"""The multi-engine join-order optimizer (Algorithm 1 of Appendix B).

A DPccp/DPhyp-style enumeration over *connected* subgraphs of the join
graph, extended with the location dimension: the DP table keeps, for each
connected subset of tables, the best plan **per engine** it can end up in.
For every csg-cmp pair and every candidate engine, the combination prices
any required moves (``getLoadCost`` + ``injectStats``) and the join itself
(``getStats``), mirroring ``emitCsgCmp`` of the paper.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass

from repro.musqle.engine_api import SQLEngineAPI
from repro.musqle.join_graph import JoinGraph
from repro.musqle.metastore import Metastore
from repro.musqle.plan import MovePlanNode, PlanNode, SQLPlanNode
from repro.sqlengine.parser import parse_query

INFEASIBLE = float("inf")

#: temp names must be unique across optimizer instances — engines retain
#: intermediate tables between queries, and a reused name would shadow them
_GLOBAL_TEMP_COUNTER = itertools.count(1)


class NoPlanError(RuntimeError):
    """No engine combination can answer the query."""


@dataclass
class OptimizerStats:
    """The Figure 4 breakdown: where optimization time goes."""

    total_seconds: float = 0.0
    explain_seconds: float = 0.0
    inject_seconds: float = 0.0
    csg_cmp_pairs: int = 0
    dp_entries: int = 0

    @property
    def enumeration_seconds(self) -> float:
        """Optimization time not spent in engine APIs."""
        return max(self.total_seconds - self.explain_seconds - self.inject_seconds, 0.0)


@dataclass
class _Entry:
    cost: float
    node: PlanNode


class MultiEngineOptimizer:
    """Location-aware DP join optimizer over the engine API."""

    def __init__(
        self,
        engines: dict[str, SQLEngineAPI],
        metastore: Metastore | None = None,
        use_confidence: bool = False,
        seed: int = 0,
    ) -> None:
        if not engines:
            raise ValueError("need at least one engine")
        self.engines = dict(engines)
        self.metastore = metastore if metastore is not None else Metastore()
        #: §V-B: "Our optimizer uses a probability, proportionate to the
        #: measured correlation, to randomly discard the API estimation
        #: results" — engines whose estimates do not correlate with their
        #: actual runtimes are probabilistically excluded.
        self.use_confidence = use_confidence
        #: §VII ablation switch: when False, intermediates are registered
        #: with pessimistic placeholder statistics instead of the real
        #: estimates — reproducing SparkSQL's pre-injection behaviour of
        #: mispricing small external tables (e.g. never broadcasting them).
        self.use_injection = True
        import numpy as _np

        self._rng = _np.random.default_rng(seed)

    def _distrusted(self, engine_name: str) -> bool:
        """Randomly discard estimates of low-correlation engines."""
        if not self.use_confidence:
            return False
        correlation = self.metastore.correlation(engine_name)
        if correlation is None:
            return False
        keep_probability = max(min(correlation, 1.0), 0.0)
        return bool(self._rng.random() > keep_probability)

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _temp_name() -> str:
        return f"inter{next(_GLOBAL_TEMP_COUNTER)}"

    def global_schemas(self) -> dict[str, list[str]]:
        """Union of all engines' table schemas."""
        schemas: dict[str, list[str]] = {}
        for engine in self.engines.values():
            for name, cols in engine.schemas().items():
                schemas.setdefault(name, cols)
        return schemas

    # -- main entry ---------------------------------------------------------
    def optimize(self, sql: str) -> tuple[PlanNode, OptimizerStats]:
        """Find the cheapest multi-engine plan for a SQL query."""
        start = time.perf_counter()
        stats = OptimizerStats()
        query = parse_query(sql, self.global_schemas())
        graph = JoinGraph(query)
        dp: dict[int, dict[str, _Entry]] = {}

        # -- singleton relations: scan at every engine holding the table ----
        for i, table in enumerate(graph.tables):
            mask = 1 << i
            dp[mask] = {}
            scan_sql = self._scan_sql(table, graph)
            for name, engine in self.engines.items():
                if not engine.has_table(table) or self._distrusted(name):
                    continue
                estimate, explain_dt = self._timed_stats(engine, scan_sql)
                stats.explain_seconds += explain_dt
                if estimate.native_cost == INFEASIBLE:
                    continue
                seconds = self.metastore.translate(name, estimate)
                node = SQLPlanNode(
                    engine=name, out_name=self._temp_name(),
                    est_stats=estimate.stats, est_seconds=seconds,
                    sql=scan_sql, inputs=[], tables=(table,),
                    est_native=estimate.native_cost,
                )
                dp[mask][name] = _Entry(seconds, node)
            if not dp[mask]:
                raise NoPlanError(f"no engine holds table {table!r}")

        # -- csg-cmp enumeration in increasing subset size ------------------
        n = graph.n_tables
        masks_by_size: list[list[int]] = [[] for _ in range(n + 1)]
        for mask in range(1, graph.full_mask + 1):
            masks_by_size[bin(mask).count("1")].append(mask)
        for size in range(2, n + 1):
            for mask in masks_by_size[size]:
                if not graph.is_connected(mask):
                    continue
                slot = dp.setdefault(mask, {})
                lowest = mask & -mask
                # enumerate proper submasks containing the lowest bit
                sub = (mask - 1) & mask
                while sub:
                    comp = mask ^ sub
                    if (
                        sub & lowest
                        and graph.is_connected(sub)
                        and graph.is_connected(comp)
                        and graph.cross_conditions(sub, comp)
                        and sub in dp
                        and comp in dp
                    ):
                        self._emit_csg_cmp(graph, dp, sub, comp, slot, stats)
                    sub = (sub - 1) & mask

        final = dp.get(graph.full_mask, {})
        if not final:
            raise NoPlanError("query has no connected execution plan")
        best = min(final.values(), key=lambda e: e.cost)
        stats.total_seconds = time.perf_counter() - start
        stats.dp_entries = sum(len(v) for v in dp.values())
        return best.node, stats

    # -- emitCsgCmp -----------------------------------------------------------
    def _emit_csg_cmp(
        self,
        graph: JoinGraph,
        dp: dict[int, dict[str, _Entry]],
        mask1: int,
        mask2: int,
        slot: dict[str, _Entry],
        stats: OptimizerStats,
    ) -> None:
        stats.csg_cmp_pairs += 1
        conditions = graph.cross_conditions(mask1, mask2)
        predicates = " AND ".join(
            f"{jc.left_column} = {jc.right_column}" for jc in conditions
        )
        for engine_name, engine in self.engines.items():
            if self._distrusted(engine_name):
                continue
            for entry1 in dp[mask1].values():
                for entry2 in dp[mask2].values():
                    cost = entry1.cost + entry2.cost
                    sides = []
                    for entry in (entry1, entry2):
                        node = entry.node
                        if node.engine != engine_name:
                            temp = self._temp_name()
                            load = engine.get_load_cost(node.est_stats)
                            inject_dt = self._timed_inject(
                                engine, temp, node.est_stats)
                            stats.inject_seconds += inject_dt
                            moved = MovePlanNode(
                                engine=engine_name, out_name=temp,
                                est_stats=node.est_stats,
                                est_seconds=node.est_seconds + load,
                                child=node, move_seconds=load,
                            )
                            cost += load
                            sides.append(moved)
                        else:
                            inject_dt = self._timed_inject(
                                engine, node.out_name, node.est_stats)
                            stats.inject_seconds += inject_dt
                            sides.append(node)
                    join_sql = (
                        f"SELECT * FROM {sides[0].out_name}, {sides[1].out_name} "
                        f"WHERE {predicates}"
                    )
                    estimate, explain_dt = self._timed_stats(engine, join_sql)
                    stats.explain_seconds += explain_dt
                    if estimate.native_cost == INFEASIBLE:
                        continue
                    cost += self.metastore.translate(engine_name, estimate)
                    current = slot.get(engine_name)
                    if current is None or cost < current.cost:
                        node = SQLPlanNode(
                            engine=engine_name, out_name=self._temp_name(),
                            est_stats=estimate.stats, est_seconds=cost,
                            sql=join_sql, inputs=sides,
                            tables=tuple(graph.tables_of(mask1 | mask2)),
                            est_native=estimate.native_cost,
                        )
                        slot[engine_name] = _Entry(cost, node)

    # -- engine-API timing wrappers ------------------------------------------
    @staticmethod
    def _timed_stats(engine: SQLEngineAPI, sql: str):
        t0 = time.perf_counter()
        estimate = engine.get_stats(sql)
        return estimate, time.perf_counter() - t0

    def _timed_inject(self, engine: SQLEngineAPI, name: str, stats) -> float:
        if not self.use_injection:
            # pessimistic placeholder: same columns, huge assumed size
            from repro.sqlengine.schema import ColumnStats, TableStats

            stats = TableStats(
                1_000_000, stats.n_columns,
                {col: ColumnStats(100_000, 0.0, 1e6) for col in stats.columns},
            )
        t0 = time.perf_counter()
        engine.inject_stats(name, stats)
        return time.perf_counter() - t0

    @staticmethod
    def _scan_sql(table: str, graph: JoinGraph) -> str:
        filters = graph.filters_of(table)
        if not filters:
            return f"SELECT * FROM {table}"
        predicates = " AND ".join(
            f"{f.column} {f.op} {_sql_value(f.value)}" for f in filters
        )
        return f"SELECT * FROM {table} WHERE {predicates}"


def _sql_value(value) -> str:
    if isinstance(value, str):
        return f"'{value}'"
    return str(value)
