"""In-process SQL engine endpoints implementing the MuSQLE engine API.

A :class:`LocalSQLEngine` binds a cost model (PostgreSQL / MemSQL / SparkSQL
flavoured) to a resident table catalog and the shared simulated clock.
Execution really runs (via :mod:`repro.sqlengine`) and charges the clock
with the cost model evaluated on *actual* cardinalities; EXPLAIN estimates
the same formulas on *estimated* cardinalities — so estimation error behaves
like the real thing.
"""

from __future__ import annotations

import numpy as np

from repro.engines.clock import SimClock
from repro.engines.errors import MemoryExceededError
from repro.musqle.cardinality import estimate_filtered, estimate_join
from repro.musqle.cost_models import (
    CostModel,
    JoinShape,
    MemSQLCostModel,
    PostgresCostModel,
    SparkSQLCostModel,
)
from repro.musqle.engine_api import QueryEstimate, SQLEngineAPI
from repro.sqlengine.executor import execute_query
from repro.sqlengine.parser import Query, parse_query
from repro.sqlengine.schema import Table, TableStats
from repro.sqlengine.tpch import generate_tpch

INFEASIBLE = float("inf")


class LocalSQLEngine(SQLEngineAPI):
    """One engine endpoint over the in-process SQL substrate."""

    def __init__(
        self,
        name: str,
        cost_model: CostModel,
        clock: SimClock,
        tables: dict[str, Table] | None = None,
        noise_sigma: float = 0.03,
        api_delay: float = 0.0,
        join_bias: float = 0.0,
        histogram_bins: int = 16,
        seed: int = 0,
    ) -> None:
        self.name = name
        self.cost_model = cost_model
        self.clock = clock
        self.resident: dict[str, Table] = dict(tables or {})
        self.loaded: dict[str, Table] = {}
        self.injected: dict[str, TableStats] = {}
        self.noise_sigma = noise_sigma
        #: hidden under-estimation of join work by the engine's own cost
        #: model ("cost model functions are oversimplified", MuSQLE §V-B):
        #: true join cost is (1 + join_bias) x the modeled one, so the
        #: estimation error compounds with join depth — the Fig 6 behaviour
        self.join_bias = join_bias
        #: equi-depth histogram resolution of the engine's ANALYZE (0
        #: disables histograms; range estimates then fall back to the
        #: min/max interpolation that data skew defeats)
        self.histogram_bins = histogram_bins
        #: artificial latency per estimation API call (models slow remote
        #: EXPLAIN endpoints; used by the Fig 5 simulated-engines experiment)
        self.api_delay = api_delay
        self._rng = np.random.default_rng(seed)
        self._stats_cache: dict[str, TableStats] = {}
        #: wall-clock accounting of estimation API usage (Fig 4 breakdown)
        self.explain_calls = 0
        self.inject_calls = 0

    # -- catalog -----------------------------------------------------------
    def add_table(self, name: str, table: Table) -> None:
        """Make a table resident in this engine."""
        self.resident[name] = table
        self._stats_cache.pop(name, None)

    def has_table(self, name: str) -> bool:
        """Whether the table is resident or loaded here."""
        return name in self.resident or name in self.loaded

    def _catalog(self) -> dict[str, Table]:
        return {**self.resident, **self.loaded}

    def schemas(self) -> dict[str, list[str]]:
        """Parser-facing schemas: physical tables plus injected phantoms."""
        out = {name: t.column_names for name, t in self._catalog().items()}
        for name, stats in self.injected.items():
            out.setdefault(name, list(stats.columns))
        return out

    def table_stats(self, name: str) -> TableStats:
        """ANALYZE-style statistics: real for physical, injected for phantoms."""
        catalog = self._catalog()
        if name in catalog:
            if name not in self._stats_cache:
                self._stats_cache[name] = catalog[name].stats(
                    histogram_bins=self.histogram_bins)
            return self._stats_cache[name]
        if name in self.injected:
            return self.injected[name]
        raise KeyError(f"engine {self.name} knows no table {name!r}")

    # -- estimation API ------------------------------------------------------
    def inject_stats(self, name: str, stats: TableStats) -> None:
        """Register phantom statistics for what-if EXPLAIN."""
        self.inject_calls += 1
        if self.api_delay:
            _busy_wait(self.api_delay)
        self.injected[name] = stats

    def get_load_cost(self, stats: TableStats) -> float:
        """Estimated seconds to ingest a table with these stats."""
        return self.cost_model.load_cost_seconds(stats)

    def get_stats(self, sql: str) -> QueryEstimate:
        """EXPLAIN: estimate cost and result stats of a query."""
        self.explain_calls += 1
        if self.api_delay:
            _busy_wait(self.api_delay)
        query = parse_query(sql, self.schemas())
        native, stats = self._estimate(query)
        return QueryEstimate(
            native_cost=native,
            stats=stats,
            est_seconds=(
                self.cost_model.seconds(native) if native != INFEASIBLE else INFEASIBLE
            ),
        )

    def _estimate(self, query: Query) -> tuple[float, TableStats]:
        """Estimate a query plan: scans + greedy pairwise joins."""
        relations: dict[str, TableStats] = {}
        native = 0.0
        for name in query.tables:
            stats = self.table_stats(name)
            stats = estimate_filtered(
                stats, [f for f in query.filters if f.table == name]
            )
            relations[name] = stats
            native += self.cost_model.scan_cost(stats)
        component = {name: name for name in query.tables}
        pending = list(query.joins)
        current: TableStats | None = None
        while pending:
            pending.sort(key=lambda jc: (
                -1 if component[jc.left_table] == component[jc.right_table]
                else relations[component[jc.left_table]].n_rows
                + relations[component[jc.right_table]].n_rows
            ))
            jc = pending.pop(0)
            lc, rc = component[jc.left_table], component[jc.right_table]
            if lc == rc:
                continue  # residual predicate: ignore for costing
            left, right = relations[lc], relations[rc]
            out = estimate_join(left, right, [jc])
            shape = JoinShape(left.n_rows, right.n_rows, out.n_rows,
                              left.n_columns, right.n_columns)
            needed = self.cost_model.memory_needed_bytes(shape)
            capacity = getattr(self.cost_model, "memory_capacity_bytes", None)
            if capacity is not None and needed > capacity:
                return INFEASIBLE, out
            native += self.cost_model.join_cost(shape)
            merged_name = f"({lc}*{rc})"
            relations[merged_name] = out
            for name, comp in list(component.items()):
                if comp in (lc, rc):
                    component[name] = merged_name
            current = out
        if current is None:
            # single-relation (or cartesian) query
            names = {component[t] for t in query.tables}
            current = relations[next(iter(names))]
            for extra in list(names)[1:]:
                current = estimate_join(current, relations[extra], [])
        return native, current

    # -- execution API ---------------------------------------------------------
    def drop_temps(self) -> None:
        """Drop every loaded/injected intermediate (end-of-query cleanup)."""
        for name in list(self.loaded):
            self._stats_cache.pop(name, None)
        self.loaded.clear()
        self.injected.clear()

    def retain(self, name: str, table: Table) -> None:
        """Keep a locally-produced intermediate as a temp table (no transfer)."""
        self.loaded[name] = table
        self._stats_cache.pop(name, None)

    def load_table(self, name: str, table: Table) -> float:
        """Ingest an intermediate result, charging the clock."""
        seconds = self.cost_model.load_cost_seconds(table.stats())
        self.clock.advance(seconds)
        self.loaded[name] = table
        self._stats_cache.pop(name, None)
        return seconds

    def execute(self, sql: str, result_name: str | None = None) -> Table:
        """Really run a query; charges the true (noisy) cost."""
        query = parse_query(sql, self.schemas())
        missing = [t for t in query.tables if not self.has_table(t)]
        if missing:
            raise KeyError(f"engine {self.name} is missing tables {missing}")
        result = execute_query(query, self._catalog())
        native = 0.0
        catalog = self._catalog()
        for name in query.tables:
            native += self.cost_model.scan_cost(catalog[name].stats())
        capacity = getattr(self.cost_model, "memory_capacity_bytes", None)
        for l_rows, r_rows, out_rows, l_cols, r_cols in result.join_shapes:
            shape = JoinShape(l_rows, r_rows, out_rows, l_cols, r_cols)
            if capacity is not None and (
                self.cost_model.memory_needed_bytes(shape) > capacity
            ):
                self.clock.advance(self.cost_model.fixed_seconds)
                raise MemoryExceededError(
                    f"{self.name}: join working set exceeds memory"
                )
            native += self.cost_model.join_cost(shape) * (1.0 + self.join_bias)
        noise = float(np.exp(self._rng.normal(0.0, self.noise_sigma)))
        self.clock.advance(self.cost_model.seconds(native) * noise)
        table = result.table
        if result_name is not None:
            table = table.renamed(result_name)
        return table


def _busy_wait(seconds: float) -> None:
    """Real wall-clock delay for simulated remote API endpoints."""
    import time

    end = time.perf_counter() + seconds
    while time.perf_counter() < end:
        pass


def build_default_deployment(scale_factor: float = 1.0, seed: int = 0,
                             everywhere: bool = False):
    """The paper's three-engine deployment over TPC-H data.

    Split placement (default, §IX): PostgreSQL holds the small tables
    (customer, nation, region), MemSQL the medium ones (part, partsupp,
    supplier) and SparkSQL the large facts (lineitem, orders).
    ``everywhere=True`` replicates every table into every engine (the
    Figure 7 scenario).
    """
    from repro.musqle.system import Deployment

    clock = SimClock()
    tables = generate_tpch(scale_factor, seed=seed)
    placement = {
        "PostgreSQL": ("customer", "nation", "region"),
        "MemSQL": ("part", "partsupp", "supplier"),
        "SparkSQL": ("lineitem", "orders"),
    }
    models = {
        "PostgreSQL": PostgresCostModel(),
        "MemSQL": MemSQLCostModel(
            # aggregate memory shrinks proportionally with ROW_SCALE so that
            # the paper's "MemSQL OOMs past ~2 GB scale" cliff is preserved
            memory_capacity_bytes=60e6,
        ),
        "SparkSQL": SparkSQLCostModel(),
    }
    # per-engine hidden cost-model biases (distributed engines misprice
    # shuffles more than centralized ones misprice disk)
    biases = {"PostgreSQL": 0.15, "MemSQL": 0.25, "SparkSQL": 0.40}
    engines = {}
    for i, (name, model) in enumerate(models.items()):
        resident = (
            dict(tables)
            if everywhere
            else {t: tables[t] for t in placement[name]}
        )
        engines[name] = LocalSQLEngine(
            name, model, clock, resident, join_bias=biases[name], seed=seed + i
        )
    return Deployment(engines=engines, clock=clock, tables=tables)
