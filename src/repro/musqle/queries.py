"""The evaluation query set (§IX-B of Appendix B).

Eighteen TPCH-derived queries in two families: join-only (Q0–Q8, producing
large outputs by combining base tables) and join-filter (Q9–Q17, with
predicates of varying selectivity).  Query text follows the supported
dialect of :mod:`repro.sqlengine.parser`.
"""

from __future__ import annotations

#: Q0-Q8: join-only, 2-7 tables.
JOIN_QUERIES: list[str] = [
    # Q0
    "SELECT * FROM region, nation WHERE r_regionkey = n_regionkey",
    # Q1
    "SELECT * FROM nation, customer WHERE n_nationkey = c_nationkey",
    # Q2
    "SELECT * FROM customer, orders WHERE c_custkey = o_custkey",
    # Q3
    "SELECT * FROM region, nation, customer "
    "WHERE r_regionkey = n_regionkey AND n_nationkey = c_nationkey",
    # Q4
    "SELECT * FROM nation, customer, orders "
    "WHERE n_nationkey = c_nationkey AND c_custkey = o_custkey",
    # Q5
    "SELECT * FROM customer, orders, lineitem "
    "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey",
    # Q6
    "SELECT * FROM nation, customer, orders, lineitem "
    "WHERE n_nationkey = c_nationkey AND c_custkey = o_custkey "
    "AND o_orderkey = l_orderkey",
    # Q7
    "SELECT * FROM customer, orders, lineitem, part "
    "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
    "AND l_partkey = p_partkey",
    # Q8
    "SELECT * FROM region, nation, customer, orders, lineitem, part, supplier "
    "WHERE r_regionkey = n_regionkey AND n_nationkey = c_nationkey "
    "AND c_custkey = o_custkey AND o_orderkey = l_orderkey "
    "AND l_partkey = p_partkey AND l_suppkey = s_suppkey",
]

#: Q9-Q17: the same shapes with constant predicates of varying selectivity.
FILTER_QUERIES: list[str] = [
    # Q9
    "SELECT * FROM region, nation "
    "WHERE r_regionkey = n_regionkey AND n_name = 'GERMANY'",
    # Q10
    "SELECT * FROM nation, customer "
    "WHERE n_nationkey = c_nationkey AND c_acctbal > 5000",
    # Q11
    "SELECT * FROM customer, orders "
    "WHERE c_custkey = o_custkey AND o_totalprice > 400000",
    # Q12
    "SELECT * FROM region, nation, customer "
    "WHERE r_regionkey = n_regionkey AND n_nationkey = c_nationkey "
    "AND r_name = 'EUROPE' AND c_acctbal > 0",
    # Q13
    "SELECT * FROM nation, customer, orders "
    "WHERE n_nationkey = c_nationkey AND c_custkey = o_custkey "
    "AND n_name = 'GERMANY' AND o_totalprice > 100000",
    # Q14
    "SELECT * FROM customer, orders, lineitem "
    "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
    "AND l_quantity < 5",
    # Q15
    "SELECT * FROM nation, customer, orders, lineitem "
    "WHERE n_nationkey = c_nationkey AND c_custkey = o_custkey "
    "AND o_orderkey = l_orderkey AND n_name = 'FRANCE' AND l_quantity < 10",
    # Q16
    "SELECT * FROM part, partsupp, lineitem "
    "WHERE p_partkey = ps_partkey AND l_partkey = p_partkey "
    "AND p_retailprice > 2090",
    # Q17
    "SELECT * FROM region, nation, customer, orders, lineitem, part "
    "WHERE r_regionkey = n_regionkey AND n_nationkey = c_nationkey "
    "AND c_custkey = o_custkey AND o_orderkey = l_orderkey "
    "AND l_partkey = p_partkey AND r_name = 'ASIA' "
    "AND p_retailprice > 2000 AND o_totalprice > 300000",
]

ALL_QUERIES: list[str] = JOIN_QUERIES + FILTER_QUERIES


def query_tables(sql: str) -> list[str]:
    """Tables referenced by one of the evaluation queries (textual split)."""
    from_part = sql.lower().split(" from ", 1)[1].split(" where ", 1)[0]
    return [t.strip() for t in from_part.split(",")]
