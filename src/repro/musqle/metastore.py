"""The MuSQLE Metastore: table locations, estimate logs and calibration.

Engines report EXPLAIN costs in native units; comparing them fairly needs a
translation into seconds per engine.  The Metastore logs (native_cost,
actual_seconds) pairs from executed queries and fits a linear model per
engine (§V-B of Appendix B), plus a correlation score used to gauge
confidence in an engine's estimates.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.musqle.engine_api import QueryEstimate


@dataclass
class Metastore:
    """Locations + measurement log + per-engine calibration state."""

    locations: dict[str, set[str]] = field(default_factory=dict)
    #: engine -> list of (native_cost, actual_seconds)
    measurements: dict[str, list[tuple[float, float]]] = field(
        default_factory=lambda: defaultdict(list)
    )
    #: engine -> (slope, intercept) translating native cost to seconds
    calibration: dict[str, tuple[float, float]] = field(default_factory=dict)

    # -- locations ---------------------------------------------------------
    def register_table(self, table: str, engine: str) -> None:
        """Record that an engine holds a table."""
        self.locations.setdefault(table, set()).add(engine)

    def engines_holding(self, table: str) -> set[str]:
        """Engines that hold a table."""
        return self.locations.get(table, set())

    # -- calibration -----------------------------------------------------------
    def log_measurement(self, engine: str, native_cost: float,
                        actual_seconds: float) -> None:
        """Record one (native cost, actual seconds) observation."""
        if np.isfinite(native_cost) and np.isfinite(actual_seconds):
            self.measurements[engine].append((native_cost, actual_seconds))

    def calibrate(self, engine: str) -> tuple[float, float] | None:
        """Fit seconds ≈ slope · native + intercept from the log."""
        pairs = self.measurements.get(engine, [])
        if len(pairs) < 3:
            return None
        x = np.array([p[0] for p in pairs])
        y = np.array([p[1] for p in pairs])
        A = np.stack([x, np.ones_like(x)], axis=1)
        coef, *_ = np.linalg.lstsq(A, y, rcond=None)
        slope = max(float(coef[0]), 0.0)
        intercept = max(float(coef[1]), 0.0)
        self.calibration[engine] = (slope, intercept)
        return self.calibration[engine]

    def calibrate_all(self) -> None:
        """Refit the translation of every logged engine."""
        for engine in list(self.measurements):
            self.calibrate(engine)

    def translate(self, engine: str, estimate: QueryEstimate) -> float:
        """Native cost → seconds: calibrated if possible, engine's own otherwise."""
        if not np.isfinite(estimate.native_cost):
            return float("inf")
        fit = self.calibration.get(engine)
        if fit is None:
            return estimate.est_seconds
        slope, intercept = fit
        return slope * estimate.native_cost + intercept

    def correlation(self, engine: str) -> float | None:
        """Pearson correlation between native costs and actual seconds.

        Low correlation flags an engine whose estimates should be distrusted
        (the paper randomly discards such estimates; we expose the score).
        """
        pairs = self.measurements.get(engine, [])
        if len(pairs) < 3:
            return None
        x = np.array([p[0] for p in pairs])
        y = np.array([p[1] for p in pairs])
        if x.std() == 0 or y.std() == 0:
            return 0.0
        return float(np.corrcoef(x, y)[0, 1])
