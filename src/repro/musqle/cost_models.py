"""Per-engine cost models, in each engine's *native* cost units.

MuSQLE's engine API returns EXPLAIN-style costs in whatever unit the engine
uses natively (PostgreSQL counts page fetches, MemSQL row operations, our
SparkSQL model abstract operator costs following Appendix B §VI).  The
Metastore trains a linear regression per engine translating native cost to
seconds — reproducing the paper's unbiased-comparison machinery instead of
hand-aligning units.

Each model also exposes ``seconds(...)`` — the *true* simulated runtime —
defined as the same formulas evaluated on actual cardinalities times a
hidden hardware constant.  Estimation error therefore comes from cardinality
misestimates, exactly as in real systems.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sqlengine.schema import TableStats
from repro.sqlengine.tpch import ROW_SCALE

PAGE_BYTES = 8192.0

#: generated tables hold ROW_SCALE x fewer rows than the nominal TPC-H
#: scale; data *transfer* costs are priced at nominal size so that the
#: fetch-vs-compute trade-offs of the paper's deployment are preserved
DATA_SCALE = float(ROW_SCALE)


@dataclass
class JoinShape:
    """What a cost model needs to price one 2-way join."""

    left_rows: float
    right_rows: float
    out_rows: float
    left_cols: int = 4
    right_cols: int = 4


class CostModel:
    """Interface: native-unit costs plus the hidden seconds-per-unit."""

    #: hidden hardware constant translating native cost into seconds.
    seconds_per_unit: float = 1e-6
    #: fixed per-query overhead in seconds (connection/job submission).
    fixed_seconds: float = 0.0

    def scan_cost(self, stats: TableStats) -> float:
        """Native cost of scanning a relation."""
        raise NotImplementedError

    def join_cost(self, shape: JoinShape) -> float:
        """Native cost of one 2-way join."""
        raise NotImplementedError

    def load_cost_seconds(self, stats: TableStats) -> float:
        """Seconds to ingest an intermediate table of the given stats."""
        raise NotImplementedError

    def memory_needed_bytes(self, shape: JoinShape) -> float:
        """Working set of the join (0 = not memory-constrained)."""
        return 0.0

    def seconds(self, native_cost: float) -> float:
        """The engine's own native-cost-to-seconds translation."""
        return self.fixed_seconds + native_cost * self.seconds_per_unit


class PostgresCostModel(CostModel):
    """Disk-based, centralized: costs are page fetches (like the real PG)."""

    def __init__(self, page_seconds: float = 0.08, load_mb_per_s: float = 25.0):
        self.seconds_per_unit = page_seconds
        self.fixed_seconds = 0.01
        self.load_mb_per_s = load_mb_per_s

    def _pages(self, rows: float, cols: int) -> float:
        return max(rows * cols * 8.0 / PAGE_BYTES, 1.0)

    def scan_cost(self, stats: TableStats) -> float:
        """Pages read for a sequential scan."""
        return self._pages(stats.n_rows, stats.n_columns)

    def join_cost(self, shape: JoinShape) -> float:
        """Hash join priced in page fetches (read both sides, write out)."""
        # hash join: read both sides + write the output
        return (
            self._pages(shape.left_rows, shape.left_cols)
            + self._pages(shape.right_rows, shape.right_cols)
            + self._pages(shape.out_rows, shape.left_cols + shape.right_cols)
        )

    def load_cost_seconds(self, stats: TableStats) -> float:
        """COPY-style ingest time at nominal data size."""
        return 0.5 + stats.size_bytes * DATA_SCALE / (self.load_mb_per_s * 1e6)


class MemSQLCostModel(CostModel):
    """Distributed in-memory row store: costs are row operations."""

    def __init__(
        self,
        row_seconds: float = 5.0e-5,
        load_mb_per_s: float = 150.0,
        memory_capacity_bytes: float = 48e6,  # scaled bytes (nominal 48 GB)
    ):
        self.seconds_per_unit = row_seconds
        self.fixed_seconds = 0.005
        self.load_mb_per_s = load_mb_per_s
        self.memory_capacity_bytes = memory_capacity_bytes

    def scan_cost(self, stats: TableStats) -> float:
        """Rows touched by an in-memory scan."""
        return float(stats.n_rows)

    def join_cost(self, shape: JoinShape) -> float:
        """Row operations of a distributed hash join."""
        return shape.left_rows + shape.right_rows + 2.0 * shape.out_rows

    def load_cost_seconds(self, stats: TableStats) -> float:
        """Ingest time into the in-memory store."""
        return 0.5 + stats.size_bytes * DATA_SCALE / (self.load_mb_per_s * 1e6)

    def memory_needed_bytes(self, shape: JoinShape) -> float:
        """Working set: build side + output, x3 overhead."""
        out_bytes = shape.out_rows * (shape.left_cols + shape.right_cols) * 8.0
        build_bytes = min(shape.left_rows * shape.left_cols,
                          shape.right_rows * shape.right_cols) * 8.0
        return 3.0 * (out_bytes + build_bytes)


class SparkSQLCostModel(CostModel):
    """The Appendix B §VI SparkSQL model: exchange + SMJ / broadcast-hash.

    Costs are abstract operation units combining the paper's formulas with
    the cluster geometry (cores, partitions); the model picks
    broadcast-hash when one side is small, sort-merge otherwise, mirroring
    the statistics-injection improvement of §VII.
    """

    def __init__(
        self,
        cores: int = 32,
        partitions: int = 64,
        # per-unit seconds are calibrated against the ROW_SCALE-reduced data
        # (1000x fewer rows than the nominal scale), hence the larger value
        unit_seconds: float = 1.0e-3,
        broadcast_threshold_rows: float = 1e5,
        load_mb_per_s: float = 250.0,
    ):
        self.cores = cores
        self.partitions = partitions
        self.seconds_per_unit = unit_seconds
        self.fixed_seconds = 1.5  # job submission + scheduling
        self.broadcast_threshold_rows = broadcast_threshold_rows
        self.load_mb_per_s = load_mb_per_s

    def _rounds(self, partitions: float) -> float:
        import math

        return max(math.ceil(partitions / self.cores), 1)

    def exchange_cost(self, rows: float) -> float:
        """C_exch: hash + rewrite every row once."""
        per_task = rows / self.partitions
        return per_task * 2.0 * self._rounds(self.partitions)

    def sort_cost(self, rows: float) -> float:
        """Per-partition sort cost (n log n over partition rows)."""
        import math

        per_task = max(rows / self.partitions, 1.0)
        return per_task * math.log2(per_task + 1) * self._rounds(self.partitions)

    def broadcast_cost(self, rows: float) -> float:
        """C_broadcast: hash once + ship to every worker."""
        return rows * (1.0 + self.cores / 4.0)

    def smj_cost(self, shape: JoinShape) -> float:
        """Sort-merge join: exchange + sort both sides + merge."""
        merge = (shape.left_rows + shape.right_rows) / self.partitions
        return (
            self.exchange_cost(shape.left_rows)
            + self.sort_cost(shape.left_rows)
            + self.exchange_cost(shape.right_rows)
            + self.sort_cost(shape.right_rows)
            + merge * self._rounds(self.partitions)
            + shape.out_rows / self.cores
        )

    def bhj_cost(self, shape: JoinShape) -> float:
        """Broadcast-hash join: broadcast the small side, probe the large."""
        small = min(shape.left_rows, shape.right_rows)
        large = max(shape.left_rows, shape.right_rows)
        probe = large / self.partitions * self._rounds(self.partitions)
        return self.broadcast_cost(small) + probe + shape.out_rows / self.cores

    def scan_cost(self, stats: TableStats) -> float:
        """Partitioned scan cost."""
        return stats.n_rows / self.cores

    def join_cost(self, shape: JoinShape) -> float:
        """BHJ when one side is under the broadcast threshold, else SMJ."""
        if min(shape.left_rows, shape.right_rows) <= self.broadcast_threshold_rows:
            return self.bhj_cost(shape)
        return self.smj_cost(shape)

    def load_cost_seconds(self, stats: TableStats) -> float:
        """Parallel ingest into the cluster."""
        return 1.0 + stats.size_bytes * DATA_SCALE / (self.load_mb_per_s * 1e6)
