"""The generic SQL engine API of MuSQLE (§IV of Appendix B).

Five functions per engine endpoint — two execution ones (``execute``,
``load_table``) and three estimation ones (``get_stats``, ``get_load_cost``,
``inject_stats``).  MuSQLE's optimizer only talks to engines through this
interface, which is what makes adding a new engine an API-implementation
exercise rather than a manual cost-model integration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sqlengine.schema import Table, TableStats


@dataclass
class QueryEstimate:
    """What ``get_stats`` (the EXPLAIN endpoint) returns.

    ``native_cost`` is in the engine's own unit (page fetches, row ops, ...);
    ``stats`` describes the estimated result relation so that it can be
    injected elsewhere.
    """

    native_cost: float
    stats: TableStats
    #: engine's own translation of native cost to seconds (may be biased —
    #: the Metastore recalibrates it from observed runs)
    est_seconds: float


class SQLEngineAPI:
    """Abstract engine endpoint.  See :class:`~repro.musqle.engines.
    LocalSQLEngine` for the in-process implementation."""

    name: str

    # -- execution functions -------------------------------------------------
    def execute(self, sql: str, result_name: str | None = None) -> Table:
        """Run a SQL query over resident + loaded tables; returns the result."""
        raise NotImplementedError

    def load_table(self, name: str, table: Table) -> float:
        """Ingest an intermediate result; returns the seconds it took."""
        raise NotImplementedError

    # -- estimation functions -----------------------------------------------
    def get_stats(self, sql: str) -> QueryEstimate:
        """EXPLAIN: estimated cost and result statistics for a query."""
        raise NotImplementedError

    def get_load_cost(self, stats: TableStats) -> float:
        """Estimated seconds to load a table with the given statistics."""
        raise NotImplementedError

    def inject_stats(self, name: str, stats: TableStats) -> None:
        """Register a 'fake' table so EXPLAIN can price queries over it
        (what-if optimization over intermediates not yet present)."""
        raise NotImplementedError

    def has_table(self, name: str) -> bool:
        """Whether the engine holds (or has loaded) a table."""
        raise NotImplementedError
