"""The MuSQLE system facade: deployment, optimization and plan execution."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engines.clock import SimClock
from repro.musqle.engines import LocalSQLEngine
from repro.musqle.metastore import Metastore
from repro.musqle.optimizer import MultiEngineOptimizer, OptimizerStats
from repro.musqle.plan import MovePlanNode, PlanNode, SQLPlanNode
from repro.sqlengine.schema import Table


@dataclass
class Deployment:
    """A set of engine endpoints sharing one simulated clock and catalog."""

    engines: dict[str, LocalSQLEngine]
    clock: SimClock
    tables: dict[str, Table] = field(default_factory=dict)

    def metastore(self) -> Metastore:
        """A Metastore pre-populated with this deployment's locations."""
        store = Metastore()
        for name, engine in self.engines.items():
            for table in engine.resident:
                store.register_table(table, name)
        return store


@dataclass
class ExecutionInfo:
    """Measured outcome of running one multi-engine plan."""

    sim_seconds: float
    move_seconds: float
    n_moves: int
    per_engine_seconds: dict[str, float]


class MuSQLE:
    """Optimize and execute SQL over a multi-engine deployment."""

    def __init__(self, deployment: Deployment, metastore: Metastore | None = None):
        self.deployment = deployment
        self.metastore = metastore if metastore is not None else deployment.metastore()
        self.optimizer = MultiEngineOptimizer(deployment.engines, self.metastore)

    # -- optimization -----------------------------------------------------
    def optimize(self, sql: str) -> tuple[PlanNode, OptimizerStats]:
        """Find the optimal multi-engine plan for a query."""
        return self.optimizer.optimize(sql)

    # -- execution -----------------------------------------------------------
    def execute(self, plan: PlanNode) -> tuple[Table, ExecutionInfo]:
        """Run a plan bottom-up across the engines; returns the result table."""
        start = self.deployment.clock.now
        info = ExecutionInfo(0.0, 0.0, 0, {})
        result = self._execute_node(plan, info)
        info.sim_seconds = self.deployment.clock.now - start
        return result, info

    def run(self, sql: str) -> tuple[Table, OptimizerStats, ExecutionInfo]:
        """optimize + execute + finalize + feed the Metastore calibration log.

        The multi-engine plan computes the SPJ core with ``SELECT *``
        semantics; the query's projection and any aggregation (GROUP BY /
        COUNT / SUM / ...) are applied here on the final result, the way a
        client-side mediator finishes off a federated query.  Temp tables
        and injected statistics are dropped afterwards.
        """
        from repro.sqlengine.executor import aggregate
        from repro.sqlengine.parser import parse_query

        query = parse_query(sql, self.optimizer.global_schemas())
        plan, opt_stats = self.optimize(sql)
        try:
            table, info = self.execute(plan)
        finally:
            self.cleanup()
        if query.is_aggregation:
            table = aggregate(table, query)
        elif query.select != ("*",):
            table = table.project(list(query.select))
        return table, opt_stats, info

    def cleanup(self) -> None:
        """Drop intermediate temp tables and injected stats on all engines."""
        for engine in self.deployment.engines.values():
            engine.drop_temps()

    def _execute_node(self, node: PlanNode, info: ExecutionInfo) -> Table:
        if isinstance(node, MovePlanNode):
            table = self._execute_node(node.child, info)
            target = self.deployment.engines[node.engine]
            seconds = target.load_table(node.out_name, table)
            info.move_seconds += seconds
            info.n_moves += 1
            return table.renamed(node.out_name)
        assert isinstance(node, SQLPlanNode)
        engine = self.deployment.engines[node.engine]
        for child in node.inputs:
            self._execute_node(child, info)
        before = self.deployment.clock.now
        result = engine.execute(node.sql, result_name=node.out_name)
        own_seconds = self.deployment.clock.now - before
        info.per_engine_seconds[node.engine] = (
            info.per_engine_seconds.get(node.engine, 0.0) + own_seconds
        )
        self.metastore.log_measurement(node.engine, node.est_native, own_seconds)
        engine.retain(node.out_name, result)
        return result
