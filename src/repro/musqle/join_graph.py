"""Join graph over a parsed query, with the connectivity helpers DPccp needs."""

from __future__ import annotations

from repro.sqlengine.parser import Filter, JoinCondition, Query


class JoinGraph:
    """Vertices are base tables, edges are equi-join predicates.

    Tables are indexed 0..n-1; subsets are bitmasks, the representation the
    csg-cmp enumeration of the optimizer works over.
    """

    def __init__(self, query: Query) -> None:
        self.query = query
        self.tables: list[str] = list(query.tables)
        self.index = {t: i for i, t in enumerate(self.tables)}
        self.adjacency: list[int] = [0] * len(self.tables)
        self.edges: list[JoinCondition] = list(query.joins)
        for jc in self.edges:
            li, ri = self.index[jc.left_table], self.index[jc.right_table]
            if li != ri:
                self.adjacency[li] |= 1 << ri
                self.adjacency[ri] |= 1 << li

    @property
    def n_tables(self) -> int:
        """Number of vertices."""
        return len(self.tables)

    @property
    def full_mask(self) -> int:
        """Bitmask with every table set."""
        return (1 << self.n_tables) - 1

    def mask_of(self, tables: list[str]) -> int:
        """Bitmask of a table subset."""
        mask = 0
        for t in tables:
            mask |= 1 << self.index[t]
        return mask

    def tables_of(self, mask: int) -> list[str]:
        """Table names of a bitmask."""
        return [t for i, t in enumerate(self.tables) if mask & (1 << i)]

    def neighborhood(self, mask: int) -> int:
        """Union of neighbours of the subset, excluding the subset itself."""
        out = 0
        for i in range(self.n_tables):
            if mask & (1 << i):
                out |= self.adjacency[i]
        return out & ~mask

    def is_connected(self, mask: int) -> bool:
        """Whether the subset induces a connected subgraph."""
        if mask == 0:
            return False
        start = mask & -mask  # lowest set bit
        reached = start
        frontier = start
        while frontier:
            grow = 0
            for i in range(self.n_tables):
                if frontier & (1 << i):
                    grow |= self.adjacency[i]
            frontier = grow & mask & ~reached
            reached |= frontier
        return reached == mask

    def cross_conditions(self, mask1: int, mask2: int) -> list[JoinCondition]:
        """Join predicates with one side in each subset."""
        out = []
        for jc in self.edges:
            li, ri = self.index[jc.left_table], self.index[jc.right_table]
            b1, b2 = 1 << li, 1 << ri
            if (b1 & mask1 and b2 & mask2) or (b1 & mask2 and b2 & mask1):
                out.append(jc)
        return out

    def filters_of(self, table: str) -> list[Filter]:
        """Constant predicates attached to one table."""
        return [f for f in self.query.filters if f.table == table]
