"""MuSQLE: distributed SQL query execution over multiple engine environments.

The side system of D3.3 §5 / Appendix B: SQL queries spanning tables that
reside in different engines are optimized by a DPhyp-style join enumerator
extended with a *location* dimension, talking to the engines only through a
generic API (execute / getStats / getLoadCost / injectStats / loadTable).

Typical use::

    from repro.musqle import MuSQLE, build_default_deployment
    deployment = build_default_deployment(scale_factor=5.0)
    musqle = MuSQLE(deployment)
    plan = musqle.optimize("SELECT ... FROM customer, orders WHERE ...")
    result = musqle.execute(plan)
"""

from repro.musqle.cardinality import estimate_filtered, estimate_join
from repro.musqle.cost_models import (
    MemSQLCostModel,
    PostgresCostModel,
    SparkSQLCostModel,
)
from repro.musqle.engine_api import QueryEstimate, SQLEngineAPI
from repro.musqle.engines import LocalSQLEngine, build_default_deployment
from repro.musqle.join_graph import JoinGraph
from repro.musqle.metastore import Metastore
from repro.musqle.optimizer import MultiEngineOptimizer, OptimizerStats
from repro.musqle.plan import MovePlanNode, PlanNode, SQLPlanNode
from repro.musqle.system import Deployment, MuSQLE
from repro.musqle.queries import JOIN_QUERIES, FILTER_QUERIES, ALL_QUERIES

__all__ = [
    "ALL_QUERIES",
    "Deployment",
    "FILTER_QUERIES",
    "JOIN_QUERIES",
    "JoinGraph",
    "LocalSQLEngine",
    "MemSQLCostModel",
    "Metastore",
    "MovePlanNode",
    "MuSQLE",
    "MultiEngineOptimizer",
    "OptimizerStats",
    "PlanNode",
    "PostgresCostModel",
    "QueryEstimate",
    "SQLEngineAPI",
    "SQLPlanNode",
    "SparkSQLCostModel",
    "build_default_deployment",
    "estimate_filtered",
    "estimate_join",
]
