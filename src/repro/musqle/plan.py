"""Multi-engine SQL plan trees: SQL operators bound to engines plus moves."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sqlengine.schema import TableStats


@dataclass
class PlanNode:
    """Base: a relation produced at a specific engine under a temp name."""

    engine: str
    out_name: str
    est_stats: TableStats
    est_seconds: float  # cumulative estimated cost of the subtree

    def walk(self):
        """Yield nodes bottom-up."""
        for child in self.children():
            yield from child.walk()
        yield self

    def children(self) -> list["PlanNode"]:
        """Child plan nodes (empty for leaves)."""
        return []

    def describe(self, indent: int = 0) -> str:
        """Readable, indented rendering of the subtree."""
        raise NotImplementedError


@dataclass
class SQLPlanNode(PlanNode):
    """One SQL query executed inside an engine over its resident/loaded tables."""

    sql: str = ""
    inputs: list[PlanNode] = field(default_factory=list)
    tables: tuple[str, ...] = ()
    #: EXPLAIN cost of this node's own query in the engine's native unit
    est_native: float = 0.0

    def children(self) -> list[PlanNode]:
        """The SQL inputs of this operator."""
        return list(self.inputs)

    def describe(self, indent: int = 0) -> str:
        """Readable, indented rendering of the subtree."""
        pad = "  " * indent
        lines = [
            f"{pad}SQL@{self.engine} -> {self.out_name} "
            f"(≈{self.est_stats.n_rows} rows, {self.est_seconds:.2f}s): "
            f"{' '.join(self.sql.split())}"
        ]
        for child in self.inputs:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)


@dataclass
class MovePlanNode(PlanNode):
    """Transfer of an intermediate result into another engine."""

    child: PlanNode = None
    move_seconds: float = 0.0

    def children(self) -> list[PlanNode]:
        """The moved child node."""
        return [self.child]

    def describe(self, indent: int = 0) -> str:
        """Readable, indented rendering of the subtree."""
        pad = "  " * indent
        lines = [
            f"{pad}MOVE {self.child.out_name}@{self.child.engine} -> "
            f"{self.out_name}@{self.engine} ({self.move_seconds:.2f}s)"
        ]
        lines.append(self.child.describe(indent + 1))
        return "\n".join(lines)


def count_moves(plan: PlanNode) -> int:
    """Number of cross-engine transfers in a plan."""
    return sum(1 for node in plan.walk() if isinstance(node, MovePlanNode))


def engines_used(plan: PlanNode) -> set[str]:
    """Engines executing SQL in a plan."""
    return {n.engine for n in plan.walk() if isinstance(n, SQLPlanNode)}
