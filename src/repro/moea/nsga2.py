"""NSGA-II: elitist multi-objective genetic algorithm (Deb et al. 2002)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np


@dataclass
class Problem:
    """A box-constrained multi-objective minimization problem.

    ``evaluate`` maps a decision vector to a tuple of objective values, all
    to be minimized.  ``integer`` marks decision variables that are rounded
    to integers (e.g. number of cores or VMs).
    """

    n_objectives: int
    lower: Sequence[float]
    upper: Sequence[float]
    evaluate: Callable[[np.ndarray], Sequence[float]]
    integer: Sequence[bool] | None = None

    def __post_init__(self) -> None:
        self.lower = np.asarray(self.lower, dtype=float)
        self.upper = np.asarray(self.upper, dtype=float)
        if self.lower.shape != self.upper.shape:
            raise ValueError("lower and upper bounds must have the same shape")
        if np.any(self.lower > self.upper):
            raise ValueError("lower bound exceeds upper bound")
        if self.integer is None:
            self.integer = np.zeros(len(self.lower), dtype=bool)
        else:
            self.integer = np.asarray(self.integer, dtype=bool)

    @property
    def n_variables(self) -> int:
        """Dimensionality of the decision space."""
        return len(self.lower)

    def repair(self, x: np.ndarray) -> np.ndarray:
        """Clip to bounds and round integer variables."""
        x = np.clip(x, self.lower, self.upper)
        if self.integer.any():
            x = np.where(self.integer, np.rint(x), x)
        return x


@dataclass
class Individual:
    """One population member: decision vector, objectives, NSGA-II state."""
    x: np.ndarray
    objectives: np.ndarray
    rank: int = 0
    crowding: float = 0.0
    dominated_set: list = field(default_factory=list, repr=False)
    domination_count: int = 0


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """Pareto dominance for minimization: a <= b everywhere, < somewhere."""
    return bool(np.all(a <= b) and np.any(a < b))


def fast_non_dominated_sort(population: list[Individual]) -> list[list[Individual]]:
    """Partition a population into Pareto fronts (rank 0 = non-dominated)."""
    fronts: list[list[Individual]] = [[]]
    for p in population:
        p.dominated_set = []
        p.domination_count = 0
    for i, p in enumerate(population):
        for q in population[i + 1 :]:
            if dominates(p.objectives, q.objectives):
                p.dominated_set.append(q)
                q.domination_count += 1
            elif dominates(q.objectives, p.objectives):
                q.dominated_set.append(p)
                p.domination_count += 1
    for p in population:
        if p.domination_count == 0:
            p.rank = 0
            fronts[0].append(p)
    i = 0
    while fronts[i]:
        nxt: list[Individual] = []
        for p in fronts[i]:
            for q in p.dominated_set:
                q.domination_count -= 1
                if q.domination_count == 0:
                    q.rank = i + 1
                    nxt.append(q)
        i += 1
        fronts.append(nxt)
    fronts.pop()  # last front is empty
    return fronts


def crowding_distance(front: list[Individual]) -> None:
    """Assign crowding distances in-place to one front."""
    n = len(front)
    for ind in front:
        ind.crowding = 0.0
    if n <= 2:
        for ind in front:
            ind.crowding = float("inf")
        return
    n_obj = len(front[0].objectives)
    for m in range(n_obj):
        front.sort(key=lambda ind: ind.objectives[m])
        front[0].crowding = front[-1].crowding = float("inf")
        span = front[-1].objectives[m] - front[0].objectives[m]
        if span == 0:
            continue
        for i in range(1, n - 1):
            front[i].crowding += (
                front[i + 1].objectives[m] - front[i - 1].objectives[m]
            ) / span


class NSGA2:
    """The NSGA-II optimizer loop.

    Parameters follow Deb et al.: simulated binary crossover (SBX) with
    distribution index ``eta_c``, polynomial mutation with index ``eta_m``,
    binary tournament selection on (rank, crowding).
    """

    def __init__(
        self,
        problem: Problem,
        population_size: int = 40,
        generations: int = 50,
        crossover_prob: float = 0.9,
        mutation_prob: float | None = None,
        eta_c: float = 15.0,
        eta_m: float = 20.0,
        seed: int = 42,
    ) -> None:
        if population_size < 4 or population_size % 2:
            raise ValueError("population_size must be an even number >= 4")
        self.problem = problem
        self.population_size = population_size
        self.generations = generations
        self.crossover_prob = crossover_prob
        self.mutation_prob = (
            mutation_prob if mutation_prob is not None else 1.0 / problem.n_variables
        )
        self.eta_c = eta_c
        self.eta_m = eta_m
        self.rng = np.random.default_rng(seed)

    # -- variation operators ------------------------------------------------
    def _sbx(self, p1: np.ndarray, p2: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        c1, c2 = p1.copy(), p2.copy()
        if self.rng.random() > self.crossover_prob:
            return c1, c2
        for i in range(len(p1)):
            if self.rng.random() > 0.5 or p1[i] == p2[i]:
                continue
            u = self.rng.random()
            beta = (
                (2 * u) ** (1.0 / (self.eta_c + 1))
                if u <= 0.5
                else (1.0 / (2 * (1 - u))) ** (1.0 / (self.eta_c + 1))
            )
            c1[i] = 0.5 * ((1 + beta) * p1[i] + (1 - beta) * p2[i])
            c2[i] = 0.5 * ((1 - beta) * p1[i] + (1 + beta) * p2[i])
        return c1, c2

    def _mutate(self, x: np.ndarray) -> np.ndarray:
        lo, hi = self.problem.lower, self.problem.upper
        y = x.copy()
        for i in range(len(x)):
            if self.rng.random() > self.mutation_prob or hi[i] == lo[i]:
                continue
            u = self.rng.random()
            delta = (
                (2 * u) ** (1.0 / (self.eta_m + 1)) - 1
                if u < 0.5
                else 1 - (2 * (1 - u)) ** (1.0 / (self.eta_m + 1))
            )
            y[i] = x[i] + delta * (hi[i] - lo[i])
        return y

    def _tournament(self, population: list[Individual]) -> Individual:
        a, b = self.rng.choice(len(population), size=2, replace=False)
        p, q = population[a], population[b]
        if p.rank != q.rank:
            return p if p.rank < q.rank else q
        return p if p.crowding > q.crowding else q

    def _make_individual(self, x: np.ndarray) -> Individual:
        x = self.problem.repair(x)
        objs = np.asarray(self.problem.evaluate(x), dtype=float)
        if objs.shape != (self.problem.n_objectives,):
            raise ValueError(
                f"evaluate returned {objs.shape}, expected ({self.problem.n_objectives},)"
            )
        return Individual(x=x, objectives=objs)

    # -- main loop ------------------------------------------------------
    def run(self) -> list[Individual]:
        """Evolve and return the final non-dominated front."""
        lo, hi = self.problem.lower, self.problem.upper
        population = [
            self._make_individual(self.rng.uniform(lo, hi))
            for _ in range(self.population_size)
        ]
        for front in fast_non_dominated_sort(population):
            crowding_distance(front)
        for _ in range(self.generations):
            offspring: list[Individual] = []
            while len(offspring) < self.population_size:
                p1 = self._tournament(population)
                p2 = self._tournament(population)
                c1, c2 = self._sbx(p1.x, p2.x)
                offspring.append(self._make_individual(self._mutate(c1)))
                if len(offspring) < self.population_size:
                    offspring.append(self._make_individual(self._mutate(c2)))
            combined = population + offspring
            fronts = fast_non_dominated_sort(combined)
            population = []
            for front in fronts:
                crowding_distance(front)
                if len(population) + len(front) <= self.population_size:
                    population.extend(front)
                else:
                    front.sort(key=lambda ind: -ind.crowding)
                    population.extend(front[: self.population_size - len(population)])
                    break
        return fast_non_dominated_sort(population)[0]
