"""Multi-objective evolutionary optimization (NSGA-II, Deb et al. 2002).

The paper's resource provisioning "builds on the MOEA framework and relies on
the NSGA-II genetic algorithm" (D3.3 §2.2.4).  This package is a from-scratch
implementation: fast non-dominated sorting, crowding-distance selection,
simulated binary crossover and polynomial mutation.
"""

from repro.moea.nsga2 import NSGA2, Individual, Problem, crowding_distance, fast_non_dominated_sort

__all__ = [
    "NSGA2",
    "Individual",
    "Problem",
    "crowding_distance",
    "fast_non_dominated_sort",
]
