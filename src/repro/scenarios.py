"""Pre-wired evaluation scenarios of D3.3 §4.

Each ``setup_*`` function registers the scenario's materialized/abstract
operators with an :class:`~repro.core.IReS` instance and returns a workflow
factory parameterized by input scale.  Tests, examples and the figure
benchmarks all build on these, keeping the operator descriptions in one
place:

- :func:`setup_graph_analytics` — Pagerank over CDR data on Java/Hama/Spark
  (Figure 11).
- :func:`setup_text_analytics` — tf-idf → k-means on scikit/Spark(MLlib)
  (Figure 12).
- :func:`setup_relational_analytics` — three TPC-H-style queries over tables
  split across PostgreSQL / MemSQL / HDFS (Figures 10, 13).
- :func:`setup_helloworld` — the four-operator fault-tolerance chain of
  Table 1 / Figures 18-22.
"""

from __future__ import annotations

from repro.core import AbstractOperator, AbstractWorkflow, Dataset, MaterializedOperator
from repro.core.platform import IReS

BYTES_PER_EDGE = 40.0
BYTES_PER_DOC = 1.0e3
PAGERANK_ITERATIONS = 10


def _op(name, alg, engine, store, in_type, out_type, n_in=1, extra=None):
    props = {
        "Constraints.OpSpecification.Algorithm.name": alg,
        "Constraints.Engine": engine,
        "Constraints.Input.number": n_in,
        "Constraints.Output.number": 1,
        f"Constraints.Output0.Engine.FS": store,
        f"Constraints.Output0.type": out_type,
    }
    for i in range(n_in):
        props[f"Constraints.Input{i}.Engine.FS"] = store
        props[f"Constraints.Input{i}.type"] = in_type
    props.update(extra or {})
    return MaterializedOperator(name, props)


# -- Figure 11: graph analytics ------------------------------------------------

def setup_graph_analytics(ires: IReS):
    """Register Pagerank over Java/Hama/Spark; returns workflow factory."""
    iters = {"Execution.Param.iterations": PAGERANK_ITERATIONS}
    for engine in ("Java", "Hama", "Spark"):
        ires.register_operator(
            _op(f"pagerank_{engine.lower()}", "pagerank", engine,
                "HDFS", "edges", "scores", extra=iters)
        )
    ires.register_abstract(AbstractOperator("pagerank", {
        "Constraints.OpSpecification.Algorithm.name": "pagerank",
        "Constraints.Input.number": 1,
        "Constraints.Output.number": 1,
    }))

    def make_workflow(n_edges: float) -> AbstractWorkflow:
        """The Pagerank workflow over a CDR graph of ``n_edges`` calls."""
        wf = AbstractWorkflow(f"graph-analytics-{int(n_edges)}")
        wf.add_dataset(Dataset("cdr", {
            "Constraints.Engine.FS": "HDFS",
            "Constraints.type": "edges",
            "Optimization.count": n_edges,
            "Optimization.size": n_edges * BYTES_PER_EDGE,
        }, materialized=True))
        wf.add_dataset(Dataset("scores"))
        wf.add_operator(ires.abstract_operators["pagerank"])
        wf.connect("cdr", "pagerank")
        wf.connect("pagerank", "scores")
        wf.set_target("scores")
        return wf

    return make_workflow


# -- Figure 12: text analytics ----------------------------------------------

def setup_text_analytics(ires: IReS):
    """tf-idf → k-means between scikit (centralized) and Spark/MLlib."""
    ires.register_operator(_op("TF_IDF_scikit", "TF_IDF", "scikit",
                               "local", "text", "arff"))
    ires.register_operator(_op("TF_IDF_spark", "TF_IDF", "Spark",
                               "HDFS", "text", "seq"))
    ires.register_operator(_op("kmeans_scikit", "kmeans", "scikit",
                               "local", "arff", "arff"))
    ires.register_operator(_op("kmeans_spark", "kmeans", "Spark",
                               "HDFS", "seq", "seq"))
    for alg in ("TF_IDF", "kmeans"):
        ires.register_abstract(AbstractOperator(alg.lower(), {
            "Constraints.OpSpecification.Algorithm.name": alg,
            "Constraints.Input.number": 1,
            "Constraints.Output.number": 1,
        }))

    def make_workflow(n_documents: float) -> AbstractWorkflow:
        """The tf-idf -> k-means workflow over ``n_documents``."""
        wf = AbstractWorkflow(f"text-analytics-{int(n_documents)}")
        wf.add_dataset(Dataset("webContent", {
            "Constraints.Engine.FS": "*",  # HDFS-resident, readable anywhere
            "Constraints.type": "text",
            "Optimization.count": n_documents,
            "Optimization.size": n_documents * BYTES_PER_DOC,
        }, materialized=True))
        wf.add_dataset(Dataset("vectors"))
        wf.add_dataset(Dataset("clusters"))
        wf.add_operator(ires.abstract_operators["tf_idf"])
        wf.add_operator(ires.abstract_operators["kmeans"])
        wf.connect("webContent", "tf_idf")
        wf.connect("tf_idf", "vectors")
        wf.connect("vectors", "kmeans")
        wf.connect("kmeans", "clusters")
        wf.set_target("clusters")
        return wf

    return make_workflow


# -- Figures 10 & 13: relational analytics ------------------------------------

#: which store holds which TPC-H tables (§4: small legacy tables in
#: PostgreSQL, medium in MemSQL, large facts in HDFS) and the fraction of
#: the total scale each table group occupies.
RELATIONAL_LAYOUT = {
    "legacy_tables": ("PostgreSQL", 0.05),   # customer, nation, region
    "medium_tables": ("MemSQL", 0.15),       # part, partsupp
    "fact_tables": ("HDFS", 0.80),           # lineitem, orders
}


def setup_relational_analytics(ires: IReS):
    """Three SQL queries, each implementable on PostgreSQL/MemSQL/SparkSQL."""
    store_of = {"PostgreSQL": "PostgreSQL", "MemSQL": "MemSQL", "SparkSQL": "HDFS"}
    for q, n_in in (("tpch_q1", 1), ("tpch_q2", 1), ("tpch_q3", 3)):
        for engine in ("PostgreSQL", "MemSQL", "SparkSQL"):
            ires.register_operator(
                _op(f"{q}_{engine.lower()}", q, engine, store_of[engine],
                    "rows", "rows", n_in=n_in)
            )
        ires.register_abstract(AbstractOperator(q, {
            "Constraints.OpSpecification.Algorithm.name": q,
            "Constraints.Input.number": n_in,
            "Constraints.Output.number": 1,
        }))

    def make_workflow(scale_gb: float) -> AbstractWorkflow:
        """The 3-query workflow at a TPC-H scale of ``scale_gb``."""
        wf = AbstractWorkflow(f"relational-analytics-{scale_gb:g}gb")
        for name, (store, fraction) in RELATIONAL_LAYOUT.items():
            wf.add_dataset(Dataset(name, {
                "Constraints.Engine.FS": store,
                "Constraints.type": "rows",
                "Optimization.size": scale_gb * fraction * 1e9,
                "Optimization.count": scale_gb * fraction * 1e6,
            }, materialized=True))
        for name in ("r1", "r2", "result"):
            wf.add_dataset(Dataset(name))
        for q in ("tpch_q1", "tpch_q2", "tpch_q3"):
            wf.add_operator(ires.abstract_operators[q])
        wf.connect("legacy_tables", "tpch_q1")
        wf.connect("tpch_q1", "r1")
        wf.connect("medium_tables", "tpch_q2")
        wf.connect("tpch_q2", "r2")
        wf.connect("r1", "tpch_q3")
        wf.connect("r2", "tpch_q3")
        wf.connect("fact_tables", "tpch_q3")
        wf.connect("tpch_q3", "result")
        wf.set_target("result")
        return wf

    return make_workflow


# -- Table 1 / Figures 18-22: the HelloWorld fault-tolerance chain -----------

#: operator → candidate engines, exactly Table 1.
HELLOWORLD_ENGINES = {
    "HelloWorld": ("Python",),
    "HelloWorld1": ("Spark", "Python"),
    "HelloWorld2": ("Spark", "MLlib", "PostgreSQL", "Hive"),
    "HelloWorld3": ("Spark", "Python"),
}


def setup_helloworld(ires: IReS):
    """The four-operator chain whose engines the §4.5 experiments kill."""
    for alg, engines in HELLOWORLD_ENGINES.items():
        for engine in engines:
            ires.register_operator(
                _op(f"{alg}_{engine.lower()}", alg, engine, "HDFS", "data", "data")
            )
        ires.register_abstract(AbstractOperator(alg, {
            "Constraints.OpSpecification.Algorithm.name": alg,
            "Constraints.Input.number": 1,
            "Constraints.Output.number": 1,
        }))

    def make_workflow(size_gb: float = 4.0) -> AbstractWorkflow:
        """The 4-operator HelloWorld chain over ``size_gb`` of input."""
        wf = AbstractWorkflow("helloworld-chain")
        wf.add_dataset(Dataset("input", {
            "Constraints.Engine.FS": "HDFS",
            "Constraints.type": "data",
            "Optimization.size": size_gb * 1e9,
        }, materialized=True))
        for name in ("d0", "dd1", "dd2", "dd3"):
            wf.add_dataset(Dataset(name))
        chain = ["HelloWorld", "HelloWorld1", "HelloWorld2", "HelloWorld3"]
        prev = "input"
        for alg, out in zip(chain, ("d0", "dd1", "dd2", "dd3")):
            wf.add_operator(ires.abstract_operators[alg])
            wf.connect(prev, alg)
            wf.connect(alg, out)
            prev = out
        wf.set_target("dd3")
        return wf

    return make_workflow
