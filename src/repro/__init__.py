"""repro — a reproduction of IReS, the Intelligent Multi-Engine Resource
Scheduler for Big Data Analytics Workflows (SIGMOD 2015 / ASAP D3.3 v2).

Public API highlights:

- :class:`repro.core.IReS` — the platform facade (register operators and
  datasets, plan and execute multi-engine workflows).
- :mod:`repro.core` — meta-data framework, operator library, DP planner,
  profiler/modeler/refinement, NSGA-II resource provisioning.
- :mod:`repro.engines` — the simulated multi-engine cloud substrate.
- :mod:`repro.analytics` — real operator implementations and generators.
- :mod:`repro.workflows` — Pegasus-style scientific workflow generators.
- :mod:`repro.musqle` — the MuSQLE multi-engine SQL side system.
- :mod:`repro.scenarios` — pre-wired evaluation scenarios (Figures 11-22).
"""

from repro.core import (
    AbstractOperator,
    AbstractWorkflow,
    Dataset,
    IReS,
    MaterializedOperator,
    OperatorLibrary,
    OptimizationPolicy,
    Planner,
)

__version__ = "1.0.0"

__all__ = [
    "AbstractOperator",
    "AbstractWorkflow",
    "Dataset",
    "IReS",
    "MaterializedOperator",
    "OperatorLibrary",
    "OptimizationPolicy",
    "Planner",
    "__version__",
]
