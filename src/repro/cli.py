"""Command-line interface for the IReS platform.

Works against an on-disk ``asapLibrary/`` directory (see
:mod:`repro.core.libraryfs`)::

    ires validate  <library_dir>              # parse + report the library
    ires lint      <library_dir>              # static analysis (IRES0xx)
    ires engines                              # list the deployed engines
    ires plan      <library_dir> <workflow>   # materialize a workflow
    ires execute   <library_dir> <workflow>   # plan + run it
    ires frontier  <library_dir> <workflow>   # Pareto time/cost frontier
    ires explain   <library_dir> <workflow>   # why each engine was chosen
    ires accuracy report <ledger_file>        # prediction-error statistics
    ires trace summarize <trace_file>         # per-phase trace summary
    ires serve     <library_dir>              # async execution service
    ires top       --server URL               # live service terminal view
    ires tenants   --server URL               # per-tenant usage accounting
    ires timeline  <run_id> --server URL      # one run's merged timeline

``ires lint`` runs the multi-pass static analyzer of :mod:`repro.analysis`
(schema, match, dataflow, model-readiness, config) and prints located
``IRES0xx`` diagnostics as text or JSON; ``--strict`` also fails on
warnings.

``ires execute --trace out.json`` writes a Chrome trace-event file (load
it in Perfetto / chrome://tracing) covering the run's planner, executor
and resilience spans.

Planning is memoized by default (``ires execute --repeat 3`` serves runs
2 and 3 from the plan cache); ``--no-plan-cache`` disables it and
``ires plan --cache-stats`` prints the cache counters.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.libraryfs import load_asap_library
from repro.core.pareto import ParetoPlanner
from repro.core.platform import IReS


def _load(library_dir: str, resilience=None, quiet=False, **ires_kwargs):
    # quiet routes the banner to stderr so machine-readable stdout (e.g.
    # ``explain --format json``) stays parseable
    out = sys.stderr if quiet else sys.stdout
    ires = IReS(resilience=resilience, **ires_kwargs)
    report = load_asap_library(library_dir, ires)
    print(f"loaded {report.total()} artefacts from {library_dir} "
          f"({len(report.datasets)} datasets, {len(report.operators)} operators, "
          f"{len(report.abstract_operators)} abstract, "
          f"{len(report.workflows)} workflows)", file=out)
    if report.load_errors:
        print(f"warning: skipped {report.load_errors} malformed artefact(s) "
              "— run `ires lint` for details", file=out)
    return ires, report


def _workflow(ires: IReS, name: str):
    workflow = ires.workflows.get(name)
    if workflow is None:
        sys.exit(f"error: no workflow {name!r}; available: {sorted(ires.workflows)}")
    return workflow


def cmd_validate(args) -> int:
    """``ires validate``: parse a library dir and validate its workflows."""
    ires, report = _load(args.library)
    for name, workflow in sorted(ires.workflows.items()):
        workflow.validate()
        print(f"  workflow {name}: {len(workflow.operators)} operators, "
              f"target {workflow.target}")
    if report.diagnostics:
        for diagnostic in report.diagnostics:
            print(f"  {diagnostic.render()}")
        print("library INVALID")
        return 1
    print("library OK")
    return 0


def cmd_lint(args) -> int:
    """``ires lint``: run the static analyzer over a library directory.

    Exit code 0 when clean (``--strict``: no warnings either), 1 when the
    gate fails.  ``--format json`` emits the machine-readable report.
    """
    import json

    from repro.analysis import lint_library
    from repro.core.libraryfs import LibraryLayoutError

    try:
        ires, collector = lint_library(args.library, workflow=args.workflow)
    except LibraryLayoutError as exc:
        sys.exit(f"error: {exc}")
    if args.workflow is not None and args.workflow not in ires.workflows \
            and not any(d.artifact == f"workflow:{args.workflow}"
                        for d in collector):
        sys.exit(f"error: no workflow {args.workflow!r}; "
                 f"available: {sorted(ires.workflows)}")
    failed = collector.failed(strict=args.strict)
    if args.format == "json":
        print(json.dumps(collector.to_json(strict=args.strict),
                         indent=2, sort_keys=True))
    else:
        print(collector.render_text())
        print(f"lint {'FAILED' if failed else 'OK'}: {args.library}"
              + (" (strict)" if args.strict else ""))
    return 1 if failed else 0


def cmd_analyze(args) -> int:
    """``ires analyze``: concurrency-correctness passes over Python source.

    Runs the IRES050–063 thread-safety and asyncio-hygiene passes
    (DESIGN.md §13) over the given files/directories.  Exit code 0 when
    clean (``--strict``: no warnings either), 1 when the gate fails.
    """
    import json
    from pathlib import Path

    from repro.analysis.concurrency import analyze_paths

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        sys.exit(f"error: no such path(s): {', '.join(missing)}")
    collector = analyze_paths(args.paths)
    failed = collector.failed(strict=args.strict)
    if args.format == "json":
        print(json.dumps(collector.to_json(strict=args.strict),
                         indent=2, sort_keys=True))
    else:
        print(collector.render_text())
        print(f"analyze {'FAILED' if failed else 'OK'}: "
              + " ".join(str(p) for p in args.paths)
              + (" (strict)" if args.strict else ""))
    return 1 if failed else 0


def cmd_engines(args) -> int:
    """``ires engines``: list the deployed engines and their operators."""
    ires = IReS()
    for name, engine in sorted(ires.cloud.engines.items()):
        algorithms = ", ".join(sorted(engine.profiles)) or "-"
        print(f"  {name:<11} {engine.kind:<10} {engine.status:<4} [{algorithms}]")
    return 0


def cmd_plan(args) -> int:
    """``ires plan``: print the optimal materialized plan of a workflow."""
    ires, _ = _load(args.library)
    plan = ires.plan(_workflow(ires, args.workflow))
    print(f"optimal plan (estimated {plan.cost:.2f}s):")
    for step in plan.steps:
        print(f"  {step.operator.name:<34} @{step.engine:<10} "
              f"est {step.estimated_cost:8.2f}s")
    if args.cache_stats:
        _print_plancache(ires)
    return 0


def cmd_execute(args) -> int:
    """``ires execute``: plan and run a workflow, printing the report.

    ``--fail-rate`` injects seeded transient faults into every engine (the
    chaos harness); ``--no-resilience`` reverts to replan-on-first-error.
    """
    from repro.execution import ResilienceManager
    from repro.execution.enforcer import ExecutionFailed
    from repro.obs.accuracy import AccuracyLedger
    from repro.obs.context import new_run_id
    from repro.obs.drift import DriftDetector

    if not 0.0 <= args.fail_rate <= 1.0:
        sys.exit(f"error: --fail-rate must be in [0, 1], got {args.fail_rate}")
    if args.repeat < 1:
        sys.exit(f"error: --repeat must be >= 1, got {args.repeat}")
    resilience = ResilienceManager.baseline() if args.no_resilience else None
    ledger = drift = None
    if args.ledger:
        ledger = AccuracyLedger(path=args.ledger)
        drift = DriftDetector(threshold=args.drift_threshold)
    ires, _ = _load(args.library, resilience, ledger=ledger, drift=drift,
                    plan_cache=args.plan_cache, journal_dir=args.journal_dir)
    if args.crash_after_step is not None:
        if not args.journal_dir:
            sys.exit("error: --crash-after-step needs --journal-dir")
        ires.executor.crash_after_steps = args.crash_after_step
    if args.fail_rate > 0:
        ires.fault_injector.seed = args.chaos_seed
        ires.fault_injector.make_all_flaky(args.fail_rate)
        print(f"chaos: fail_rate={args.fail_rate} seed={args.chaos_seed}")
    profiler = None
    if args.profile:
        from repro.obs.profiling import DEFAULT_HZ, SamplingProfiler

        profiler = SamplingProfiler(hz=DEFAULT_HZ,
                                    track_allocations=True).start()
        if profiler.allocation_tracker is not None:
            ires.tracer.add_hook(profiler.allocation_tracker)
    report = None
    for run in range(args.repeat):
        # a known run id up front keeps the journal addressable after SIGINT
        run_id = new_run_id() if args.journal_dir else None
        try:
            report = ires.execute(_workflow(ires, args.workflow),
                                  run_id=run_id)
        except KeyboardInterrupt:
            # the enforcer already journaled the interrupted state
            print(f"\ninterrupted: run {run_id or '(unjournaled)'}")
            if args.journal_dir and run_id:
                print(f"  journal: {args.journal_dir}/{run_id}.jsonl")
                print(f"  resume with: ires runs recover {args.library} "
                      f"{run_id} --journal-dir {args.journal_dir}")
            return 130
        except ExecutionFailed as exc:
            _export_trace(ires, args.trace)
            _export_profile(profiler, args.profile)
            _print_resilience(ires)
            sys.exit(f"error: {exc}")
        prefix = f"run {run + 1}/{args.repeat}: " if args.repeat > 1 else ""
        print(f"{prefix}succeeded={report.succeeded} "
              f"simTime={report.sim_time:.2f}s "
              f"replans={report.replans} retries={report.retries} "
              f"cachedPlans={report.cached_plans} runId={report.run_id}")
    for execution in report.executions:
        flag = "" if execution.success else "  FAILED"
        print(f"  {execution.step.operator.name:<34} @{execution.engine:<10} "
              f"{execution.sim_seconds:8.2f}s{flag}")
    _print_resilience(ires)
    _print_plancache(ires)
    _export_trace(ires, args.trace)
    _export_profile(profiler, args.profile)
    if ledger is not None:
        alarms = len(drift.alarms) if drift is not None else 0
        print(f"ledger: {len(ledger)} entries -> {args.ledger} "
              f"(driftAlarms={alarms})")
    return 0 if report.succeeded else 1


def _export_trace(ires: IReS, path: str | None) -> None:
    """Write the platform tracer's spans as a Chrome trace-event file."""
    if not path:
        return
    count = ires.tracer.export_chrome(path)
    print(f"trace: wrote {count} spans to {path} "
          "(load in Perfetto / chrome://tracing)")


def _export_profile(profiler, path: str | None) -> None:
    """Stop a --profile sampler; write speedscope JSON + HTML flamegraph."""
    if profiler is None or not path:
        return
    from repro.obs.profiling import flamegraph_html

    profile = profiler.stop()
    profile.save(path)
    html_path = path.rsplit(".", 1)[0] + ".html" if "." in path \
        else path + ".html"
    with open(html_path, "w", encoding="utf-8") as fh:
        fh.write(flamegraph_html(profile.speedscope(),
                                 title=f"IReS profile: {path}"))
    dropped = sum(profile.dropped.values())
    print(f"profile: {len(profile.samples)} samples at {profile.hz:.0f} Hz "
          f"(dropped={dropped}, overhead={profile.overhead:.3f}s) "
          f"-> {path}, {html_path}")


def _print_plancache(ires: IReS) -> None:
    """Print the plan cache's counters (nothing when caching is disabled)."""
    cache = ires.plan_cache
    if cache is None:
        return
    stats = cache.stats()
    print(f"plancache: hits={stats['hits']} misses={stats['misses']} "
          f"size={stats['size']} evictions={stats['evictions']} "
          f"invalidations={stats['invalidations']}")


def _print_resilience(ires: IReS) -> None:
    """Print the resilience layer's status (breakers + counters)."""
    resilience = ires.executor.resilience
    if resilience is None:
        return
    status = resilience.status()
    counters = status["counters"]
    print(f"resilience: retries={counters['retries']} "
          f"breakerOpens={counters['breakerOpens']} "
          f"speculations={counters['speculations']}")
    for name, breaker in status["breakers"].items():
        if breaker["state"] != "closed" or breaker["consecutiveFailures"]:
            print(f"  breaker {name:<11} {breaker['state']:<9} "
                  f"failures={breaker['consecutiveFailures']}")


def cmd_serve(args) -> int:
    """``ires serve``: run the async execution service over HTTP.

    Starts an :class:`~repro.api.service.IResService` (bounded queue,
    tenant-fair dequeueing, per-run deadlines, write-ahead journaling when
    ``--journal-dir`` is set) behind the REST surface.  On startup,
    interrupted journaled runs are re-enqueued and resumed; on SIGINT or
    SIGTERM the server stops admitting, drains in-flight runs and exits.
    """
    import asyncio
    import signal
    import threading

    from repro.api.httpd import make_http_server
    from repro.api.rest import IResServer
    from repro.api.service import IResService
    from repro.obs.slo import SLOTracker, load_slo_config

    def factory() -> IReS:
        ires = IReS()
        load_asap_library(args.library, ires)
        return ires

    slo: SLOTracker | bool = True
    if args.slo_config:
        try:
            slo = SLOTracker(load_slo_config(args.slo_config))
        except (OSError, ValueError) as exc:
            sys.exit(f"error: cannot load SLO config {args.slo_config!r}: "
                     f"{exc}")
    service = IResService(
        factory,
        workers=args.workers,
        queue_limit=args.queue_limit,
        tenant_quota=args.tenant_quota,
        journal_dir=args.journal_dir,
        default_deadline_seconds=args.deadline,
        slo=slo,
        cluster=args.cluster_policy if args.cluster else None,
    )
    server = IResServer(factory(), service=service)
    httpd = make_http_server(server, args.host, args.port)
    host, port = httpd.server_address[:2]

    async def run() -> None:
        recovered = await service.start()
        for rec in recovered:
            print(f"recovered interrupted run {rec.run_id} "
                  f"({rec.workflow}); resuming")
        print(f"ires service on http://{host}:{port} "
              f"(workers={args.workers} queueLimit={args.queue_limit} "
              f"journal={args.journal_dir or 'off'} "
              f"cluster={service.cluster_policy or 'off'})", flush=True)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        await stop.wait()
        print("draining: admissions closed, waiting for in-flight runs",
              flush=True)
        httpd.shutdown()
        await service.shutdown(drain=True, timeout=args.drain_timeout)
        print("drained, bye")

    asyncio.run(run())
    return 0


def _http_json(method: str, base: str, path: str, body=None) -> dict:
    """One JSON request against a running ``ires serve`` instance."""
    import json
    import urllib.error
    import urllib.request

    url = base.rstrip("/") + path
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request) as response:
            return json.loads(response.read() or b"{}")
    except urllib.error.HTTPError as exc:
        payload = exc.read()
        try:
            message = json.loads(payload).get("error", "")
        except ValueError:
            message = payload.decode(errors="replace")
        sys.exit(f"error: HTTP {exc.code}: {message}")
    except urllib.error.URLError as exc:
        sys.exit(f"error: cannot reach {base}: {exc.reason}")


def _print_run_line(run: dict) -> None:
    state = run.get("state", "?")
    print(f"  {run['runId']:<14} {run.get('workflow', '?'):<24} {state}")


def cmd_runs_list(args) -> int:
    """``ires runs list``: list runs (live service or journal directory)."""
    if args.server:
        for run in _http_json("GET", args.server, "/runs")["runs"]:
            _print_run_line(run)
        return 0
    from pathlib import Path

    from repro.execution.journal import JournalError, list_journals, recover

    directory = Path(args.journal_dir or "")
    if not args.journal_dir or not directory.is_dir():
        sys.exit("error: pass --server URL or --journal-dir DIR")
    journals = list_journals(directory)
    if not journals:
        print(f"no journals under {directory}")
        return 0
    for path in journals:
        try:
            run = recover(path)
        except JournalError as exc:
            print(f"  {path.stem:<14} CORRUPT: {exc}")
            continue
        state = run.terminal or "interrupted"
        torn = " (torn tail)" if run.torn_tail else ""
        print(f"  {run.run_id:<14} {run.workflow:<24} {state:<12} "
              f"steps={len(run.finished_steps)} replans={run.replans} "
              f"resumes={run.resumes}{torn}")
    return 0


def cmd_runs_status(args) -> int:
    """``ires runs status``: one run's state (live service or journal)."""
    import json

    if args.server:
        run = _http_json("GET", args.server, f"/runs/{args.run_id}")
        print(json.dumps(run, indent=2, sort_keys=True))
        return 0
    from repro.execution.journal import (
        JournalError,
        journal_path,
        recover,
    )

    if not args.journal_dir:
        sys.exit("error: pass --server URL or --journal-dir DIR")
    path = journal_path(args.journal_dir, args.run_id)
    try:
        run = recover(path)
    except FileNotFoundError:
        sys.exit(f"error: no journal for run {args.run_id!r} under "
                 f"{args.journal_dir}")
    except JournalError as exc:
        sys.exit(f"error: {exc}")
    print(json.dumps(run.to_dict(), indent=2, sort_keys=True))
    return 0


def cmd_runs_cancel(args) -> int:
    """``ires runs cancel``: cancel a queued or running service run."""
    run = _http_json("POST", args.server, f"/runs/{args.run_id}/cancel")
    print(f"run {run['runId']}: {run['state']}")
    return 0


def cmd_runs_recover(args) -> int:
    """``ires runs recover``: resume an interrupted journaled run.

    Replays the run's journal, seeds its completed steps as materialized
    results and executes only the unfinished remainder — completed steps
    are never re-executed.
    """
    from repro.execution.enforcer import ExecutionFailed
    from repro.execution.journal import JournalError

    ires, _ = _load(args.library, journal_dir=args.journal_dir)
    try:
        report = ires.recover_run(args.run_id)
    except FileNotFoundError:
        sys.exit(f"error: no journal for run {args.run_id!r} under "
                 f"{args.journal_dir}")
    except (JournalError, KeyError, ValueError) as exc:
        sys.exit(f"error: {exc}")
    except ExecutionFailed as exc:
        sys.exit(f"error: {exc}")
    print(f"resumed run {report.run_id}: succeeded={report.succeeded} "
          f"recoveredSteps={report.recovered_steps} "
          f"executedSteps={len(report.executions)} "
          f"simTime={report.sim_time:.2f}s replans={report.replans}")
    return 0 if report.succeeded else 1


def cmd_tenants(args) -> int:
    """``ires tenants``: per-tenant usage accounting from a live service."""
    import json

    snapshot = _http_json("GET", args.server, "/tenants")
    if args.format == "json":
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    tenants = snapshot.get("tenants", [])
    if not tenants:
        print("no tenant activity yet")
        return 0
    print(f"  {'tenant':<16} {'runs':>5} {'ok':>4} {'fail':>4} "
          f"{'core-s':>9} {'queued-s':>9} {'retries':>7} {'replans':>7} "
          f"{'journal-B':>9}")
    for tenant in tenants:
        by_state = tenant.get("runsByState", {})
        print(f"  {tenant['tenant']:<16} {tenant['runs']:>5} "
              f"{by_state.get('succeeded', 0):>4} "
              f"{by_state.get('failed', 0):>4} "
              f"{tenant['totalCoreSeconds']:>9.2f} "
              f"{tenant['queuedWaitSeconds']:>9.3f} "
              f"{tenant['retries']:>7} {tenant['replans']:>7} "
              f"{tenant['journalBytes']:>9}")
    return 0


def cmd_timeline(args) -> int:
    """``ires timeline``: one run's merged event timeline.

    Against ``--server`` the service merges journal records, trace spans,
    structured logs and the run record; with ``--journal-dir`` only the
    on-disk journal skeleton is shown (works without a live service).
    """
    import json

    from repro.obs.timeline import TimelineEvent, build_timeline, render_text

    if args.server:
        payload = _http_json(
            "GET", args.server, f"/runs/{args.run_id}/timeline")
        if args.format == "json":
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        events = [TimelineEvent(kind=e["kind"], source=e["source"],
                                wall=e.get("wall"), sim=e.get("sim"),
                                detail=e.get("detail", {}))
                  for e in payload.get("events", [])]
        print(render_text(args.run_id, events))
        return 0
    if not args.journal_dir:
        sys.exit("error: pass --server URL or --journal-dir DIR")
    from repro.execution.journal import (
        JournalError,
        journal_path,
        read_journal,
    )

    path = journal_path(args.journal_dir, args.run_id)
    try:
        records = read_journal(path)
    except FileNotFoundError:
        sys.exit(f"error: no journal for run {args.run_id!r} under "
                 f"{args.journal_dir}")
    except JournalError as exc:
        sys.exit(f"error: {exc}")
    events = build_timeline(args.run_id, journal_records=records)
    if args.format == "json":
        from repro.obs.timeline import timeline_to_dict

        print(json.dumps(timeline_to_dict(args.run_id, events),
                         indent=2, sort_keys=True))
    else:
        print(render_text(args.run_id, events))
    return 0


def _render_top(base: str) -> str:
    """One ``ires top`` frame polled from a live service."""
    from repro.obs.metrics import parse_exposition

    stats = _http_json("GET", base, "/service")
    lines = [
        f"ires service {base}  "
        f"accepting={'yes' if stats.get('accepting') else 'NO'}",
        f"  queue={stats.get('queueDepth', 0)} "
        f"active={stats.get('active', 0)}/{stats.get('workers', '?')} "
        f"peak={stats.get('peakActive', 0)} "
        f"queueWaitEwma={stats.get('queueWaitEwmaSeconds') or 0:.3f}s "
        f"retryAfterHint={stats.get('retryAfterHint', 0):.1f}s",
    ]
    by_state = stats.get("runsByState") or {}
    if by_state:
        states = " ".join(f"{k}={v}" for k, v in sorted(by_state.items()))
        lines.append(f"  runs: {states}")
    profiler = stats.get("profiler")
    if profiler:
        dropped = sum((profiler.get("dropped") or {}).values())
        lines.append(
            f"  profiler: {'on' if profiler.get('running') else 'OFF'} "
            f"{profiler.get('hz', 0):.0f}Hz ({profiler.get('mode', '?')}) "
            f"samples={profiler.get('samples', 0)} dropped={dropped} "
            f"overhead={profiler.get('overheadSeconds', 0):.3f}s")
    try:
        cluster = _http_json("GET", base, "/cluster")
    except SystemExit:
        cluster = {}
    if cluster:
        util = cluster.get("utilization") or {}
        lines.append(
            f"  cluster [{cluster.get('policy', '?')}] "
            f"inFlight={cluster.get('inFlight', 0)} "
            f"placed={cluster.get('stepsPlaced', 0)} "
            f"done={cluster.get('completed', 0)}/"
            f"{cluster.get('admitted', 0)} "
            f"cores={util.get('cores', 0.0):.0%} "
            f"mem={util.get('memory', 0.0):.0%}")
        for run in cluster.get("runs", [])[:8]:
            lines.append(
                f"    run {str(run.get('runId'))[:12]:<12} "
                f"{run.get('workflow', '?'):<14} "
                f"steps={run.get('stepsDone', 0)}/"
                f"{run.get('stepsTotal', 0)} "
                f"running={run.get('stepsRunning', 0)} "
                f"failed={run.get('stepsFailed', 0)}")
    try:
        slo = _http_json("GET", base, "/slo")
    except SystemExit:
        slo = {}
    for status in slo.get("slos", []):
        flag = "ALARM" if status["state"] == "alarming" else "ok"
        lines.append(
            f"  slo {status['slo']:<16} {flag:<5} "
            f"compliance={status['compliance']:.4f} "
            f"burn={status['burnRateShort']:.2f}/{status['burnRateLong']:.2f}"
            f" ({status['eventsShort']} events)")
    try:
        tenants = _http_json("GET", base, "/tenants")
    except SystemExit:
        tenants = {}
    for tenant in tenants.get("tenants", []):
        lines.append(
            f"  tenant {tenant['tenant']:<14} runs={tenant['runs']:<4} "
            f"core-s={tenant['totalCoreSeconds']:<9.2f} "
            f"queued-s={tenant['queuedWaitSeconds']:.3f}")
    # the runs-total counter (status x tenant) comes from /metrics text
    import urllib.error
    import urllib.request

    try:
        with urllib.request.urlopen(base.rstrip("/") + "/metrics") as resp:
            parsed = parse_exposition(resp.read().decode())
        finished = sum(
            value for name, labels, value in parsed["samples"]
            if name == "ires_service_runs_total")
        lines.append(f"  finished runs (metrics): {finished:.0f}")
    except (urllib.error.URLError, ValueError, KeyError):
        pass
    return "\n".join(lines)


def cmd_top(args) -> int:
    """``ires top``: a refreshing terminal view of a live service.

    The poll loop sleeps on an Event a SIGINT/SIGTERM handler sets, so
    Ctrl-C lands immediately instead of waiting out a blocking
    ``time.sleep`` — and the old sleep-based loop lives on as the seeded
    IRES060 fixture.
    """
    import signal
    import threading

    if args.once:
        print(_render_top(args.server))
        return 0
    stop = threading.Event()

    def _request_stop(signum, frame):  # noqa: ARG001 — signal signature
        stop.set()

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, _request_stop)
        except (ValueError, OSError):  # non-main thread / unsupported
            pass
    try:
        while not stop.is_set():
            frame = _render_top(args.server)
            # clear screen + home, then one frame
            sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
            sys.stdout.flush()
            stop.wait(args.interval)  # interruptible: handler sets the event
    except KeyboardInterrupt:
        pass  # a second Ctrl-C while rendering still exits cleanly
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print()
    return 0


def cmd_frontier(args) -> int:
    """``ires frontier``: print the Pareto time/cost plan frontier."""
    ires, _ = _load(args.library)
    planner = ParetoPlanner(ires.library, ires.estimator)
    frontier = planner.plan_frontier(_workflow(ires, args.workflow))
    print(f"{len(frontier)} Pareto-optimal plans (time vs cost):")
    for plan in sorted(frontier, key=lambda p: p.metrics["execTime"]):
        engines = "+".join(sorted(plan.engines_used()))
        print(f"  time={plan.metrics['execTime']:9.2f}s "
              f"cost={plan.metrics['cost']:11.1f}  [{engines}]")
    return 0


def cmd_sql(args) -> int:
    """``ires sql``: optimize (and optionally run) a multi-engine SQL query."""
    from repro.musqle import MuSQLE, build_default_deployment
    from repro.musqle.plan import count_moves, engines_used

    deployment = build_default_deployment(scale_factor=args.scale)
    musqle = MuSQLE(deployment)
    plan, stats = musqle.optimize(args.query)
    print(f"optimized in {stats.total_seconds * 1000:.1f}ms "
          f"({stats.csg_cmp_pairs} csg-cmp pairs); engines "
          f"{sorted(engines_used(plan))}, {count_moves(plan)} moves")
    print(plan.describe())
    if args.execute:
        table, info = musqle.execute(plan)
        print(f"result: {table.n_rows} rows in {info.sim_seconds:.2f} "
              f"simulated seconds")
    return 0


def cmd_trace_summarize(args) -> int:
    """``ires trace summarize``: per-run, per-phase totals + critical path.

    With ``--self-time`` a ``self (s)`` column of profiler-attributed CPU
    joins the table, sourced from ``--profile FILE`` or, by default, a
    ``<trace>.profile.json`` written by ``ires execute --profile`` next
    to the trace.
    """
    from repro.obs.profiling import (
        find_profile_for_trace,
        load_profile,
        self_times_from_speedscope,
    )
    from repro.obs.tracing import load_trace, summarize_spans

    try:
        spans = load_trace(args.trace_file)
    except (OSError, ValueError) as exc:
        sys.exit(f"error: cannot load trace {args.trace_file!r}: {exc}")
    if not spans:
        sys.exit(f"error: no spans in {args.trace_file!r}")
    self_times = None
    want_self = getattr(args, "self_time", False)
    profile_path = getattr(args, "profile", None)
    if want_self or profile_path:
        path = profile_path or find_profile_for_trace(args.trace_file)
        if path is None:
            sys.exit("error: --self-time needs a profile: pass --profile "
                     "FILE or keep a <trace>.profile.json next to the "
                     "trace (ires execute --profile writes one)")
        try:
            self_times = self_times_from_speedscope(load_profile(path))
        except (OSError, ValueError) as exc:
            sys.exit(f"error: cannot load profile {path!r}: {exc}")
    summary = summarize_spans(spans, self_times=self_times)
    show_self = self_times is not None
    for run in summary["runs"]:
        print(f"run {run['run_id']}: {run['spans']} spans")
        header = (f"  {'phase':<12} {'spans':>5} {'wall (s)':>10} "
                  f"{'sim (s)':>10} {'errors':>6}")
        if show_self:
            header += f" {'self (s)':>10}"
        print(header)
        for phase, totals in sorted(run["phases"].items()):
            line = (f"  {phase:<12} {totals['spans']:>5} "
                    f"{totals['wall_seconds']:>10.4f} "
                    f"{totals['sim_seconds']:>10.2f} {totals['errors']:>6}")
            if show_self:
                self_s = totals.get("self_seconds")
                line += (f" {self_s:>10.4f}" if self_s is not None
                         else f" {'-':>10}")
            print(line)
        chain = run["critical_path"]
        if chain:
            print(f"  critical path ({run['critical_path_seconds']:.2f} "
                  f"simulated seconds):")
            for hop in chain:
                print(f"    {hop['name']:<36} @{hop['engine']:<10} "
                      f"{hop['sim_seconds']:8.2f}s")
    return 0


def cmd_accuracy_report(args) -> int:
    """``ires accuracy report``: per-pair prediction-error statistics.

    Reads a ledger JSONL file written by ``ires execute --ledger`` (or
    :meth:`AccuracyLedger.save`) and prints per-(operator, engine) MAPE,
    signed bias, EWMA error and sample counts; ``--html`` additionally
    writes a self-contained HTML report with error-trend charts.
    """
    import json

    from repro.obs.accuracy import AccuracyLedger

    ledger = AccuracyLedger()
    try:
        ledger.load(args.ledger_file)
    except (OSError, ValueError) as exc:
        sys.exit(f"error: cannot load ledger {args.ledger_file!r}: {exc}")
    report = ledger.report()
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"{len(ledger)} ledger entries, "
              f"{len(report['pairs'])} (operator, engine) pairs")
        if report["pairs"]:
            print(f"  {'operator':<16} {'engine':<12} {'n':>4} {'MAPE':>7} "
                  f"{'bias':>7} {'EWMA':>7} {'recent':>7}")
            for pair in report["pairs"]:
                print(f"  {pair['operator']:<16} {pair['engine']:<12} "
                      f"{pair['samples']:>4} {pair['mape']:>7.3f} "
                      f"{pair['bias']:>+7.3f} {pair['ewmaError']:>7.3f} "
                      f"{pair['recentMape']:>7.3f}")
    if args.html:
        from repro.obs.htmlreport import write_html

        write_html(ledger, args.html, threshold=args.threshold)
        # keep --format json stdout parseable: confirmation goes to stderr
        print(f"wrote {args.html}",
              file=sys.stderr if args.format == "json" else sys.stdout)
    return 0


def _print_explain_text(report: dict) -> None:
    """Render one explain report (a planning pass) as text."""
    cost = report.get("planCost")
    print(f"workflow {report['workflow']} "
          f"(plan cost {cost:.2f})" if cost is not None
          else f"workflow {report['workflow']} (no feasible plan)")
    for step in report["steps"]:
        chosen = step["chosen"]
        print(f"  step {step['abstract']}:")
        if chosen is None:
            print("    no feasible candidate chosen")
        else:
            err = chosen.get("modelError")
            err_text = (f", model MAPE {err['mape']:.3f} "
                        f"({err['samples']} samples)" if err else "")
            print(f"    chosen   {chosen['operator']:<30} "
                  f"@{chosen['engine']:<10} total {chosen['totalCost']:.2f}"
                  f"{err_text}")
            best = step["bestRejected"]
            if best is not None:
                print(f"    rejected {best['operator']:<30} "
                      f"@{best['engine']:<10} total {best['totalCost']:.2f} "
                      f"(+{step['costDelta']:.2f} vs chosen)")
            for alt in step["alternatives"][1:]:
                print(f"             {alt['operator']:<30} "
                      f"@{alt['engine']:<10} total {alt['totalCost']:.2f} "
                      f"(+{alt['deltaVsChosen']:.2f})")
        for bad in step["infeasible"]:
            print(f"    infeasible {bad['operator']:<28} "
                  f"@{bad['engine']:<10} [{bad['reason']}]")


def cmd_explain(args) -> int:
    """``ires explain``: why the DP chose each engine, and by how much.

    Plans the workflow with provenance recording on and prints, per
    abstract operator, the chosen implementation, every feasible
    alternative with its cost delta, and the infeasible candidates with
    reasons.  ``--ledger`` annotates each candidate with the measured
    error of the model its prediction came from.
    """
    import json

    from repro.core.planner import PlanningError
    from repro.obs.accuracy import AccuracyLedger

    ires, _ = _load(args.library, record_provenance=True,
                    quiet=args.format == "json")
    workflow = _workflow(ires, args.workflow)
    ledger = None
    if args.ledger:
        ledger = AccuracyLedger()
        try:
            ledger.load(args.ledger)
        except (OSError, ValueError) as exc:
            sys.exit(f"error: cannot load ledger {args.ledger!r}: {exc}")
    try:
        ires.plan(workflow)
    except PlanningError as exc:
        sys.exit(f"error: {exc}")
    prov = ires.planner.last_provenance
    if prov is None:
        sys.exit("error: planner recorded no provenance")
    report = prov.explain(ledger=ledger)
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        _print_explain_text(report)
    return 0


def cmd_profile_record(args) -> int:
    """``ires profile record``: profile a plan+execute of one workflow.

    Runs the workflow under a high-rate sampler and writes speedscope
    JSON (plus an HTML flamegraph) — the explicit-profiling counterpart
    of the service's always-on low-rate profiler.
    """
    from repro.execution.enforcer import ExecutionFailed
    from repro.obs.profiling import SamplingProfiler

    if args.hz <= 0:
        sys.exit(f"error: --hz must be positive, got {args.hz}")
    ires, _ = _load(args.library)
    workflow = _workflow(ires, args.workflow)
    profiler = SamplingProfiler(
        hz=args.hz, mode=args.mode,
        track_allocations=args.allocations).start()
    if profiler.allocation_tracker is not None:
        ires.tracer.add_hook(profiler.allocation_tracker)
    try:
        report = ires.execute(workflow)
    except ExecutionFailed as exc:
        _export_profile(profiler, args.out)
        sys.exit(f"error: {exc}")
    print(f"run {report.run_id}: succeeded={report.succeeded} "
          f"simTime={report.sim_time:.2f}s")
    _export_profile(profiler, args.out)
    return 0


def cmd_profile_report(args) -> int:
    """``ires profile report``: hot functions and per-run attribution."""
    import json

    from repro.obs.profiling import (
        hot_functions_from_speedscope,
        load_profile,
    )

    try:
        doc = load_profile(args.profile_file)
    except (OSError, ValueError) as exc:
        sys.exit(f"error: cannot load profile {args.profile_file!r}: {exc}")
    meta = doc.get("ires", {})
    hot = hot_functions_from_speedscope(doc, limit=args.limit)
    if args.format == "json":
        print(json.dumps({"meta": meta, "hotFunctions": hot},
                         indent=2, sort_keys=True))
        return 0
    print(f"profile {args.profile_file}: mode={meta.get('mode', '?')} "
          f"hz={meta.get('hz', '?')} samples={meta.get('sampleCount', '?')} "
          f"duration={meta.get('durationSeconds', '?')}s "
          f"overhead={meta.get('overheadSeconds', '?')}s")
    dropped = meta.get("dropped") or {}
    if dropped:
        drops = " ".join(f"{k}={v}" for k, v in sorted(dropped.items()))
        print(f"  dropped: {drops}")
    print(f"  {'self (s)':>10} {'total (s)':>10}  function")
    for row in hot:
        print(f"  {row['selfSeconds']:>10.4f} {row['totalSeconds']:>10.4f}  "
              f"{row['function']}")
    runs = meta.get("runs") or {}
    if runs:
        print("  runs:")
        for run_id, entry in sorted(runs.items()):
            cats = entry.get("selfSecondsByCategory") or {}
            top = ", ".join(f"{k}={v:.3f}s" for k, v in
                            sorted(cats.items(), key=lambda kv: -kv[1])[:4])
            print(f"    {run_id}: {entry.get('samples', 0)} samples"
                  + (f" ({top})" if top else ""))
    allocations = meta.get("allocations") or {}
    by_cat = allocations.get("netBytesByCategory") or {}
    if by_cat:
        cats = ", ".join(f"{k}={v:+d}B" for k, v in sorted(by_cat.items()))
        print(f"  allocations: {cats}")
    return 0


def cmd_profile_diff(args) -> int:
    """``ires profile diff``: self-time deltas between two profiles."""
    from repro.obs.profiling import diff_speedscope, load_profile

    docs = []
    for path in (args.base, args.other):
        try:
            docs.append(load_profile(path))
        except (OSError, ValueError) as exc:
            sys.exit(f"error: cannot load profile {path!r}: {exc}")
    rows = diff_speedscope(docs[0], docs[1], limit=args.limit)
    if not rows:
        print("no samples in either profile")
        return 0
    print(f"self-time deltas ({args.other} - {args.base}), "
          "largest magnitude first:")
    print(f"  {'base (s)':>10} {'other (s)':>10} {'delta (s)':>10}  function")
    for row in rows:
        print(f"  {row['baseSeconds']:>10.4f} {row['otherSeconds']:>10.4f} "
              f"{row['deltaSeconds']:>+10.4f}  {row['function']}")
    return 0


def cmd_report(args) -> int:
    """``ires report``: aggregate benchmark result tables into one markdown."""
    from pathlib import Path

    results = Path(args.results)
    files = sorted(results.glob("*.txt")) if results.is_dir() else []
    if not files:
        sys.exit(f"error: no result files under {results} "
                 "(run `pytest benchmarks/ --benchmark-only` first)")
    sections = ["# Reproduced figures and tables\n"]
    for path in files:
        sections.append(f"## {path.stem}\n\n```\n{path.read_text().rstrip()}\n```\n")
    Path(args.out).write_text("\n".join(sections))
    print(f"wrote {args.out} ({len(files)} result tables)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="ires",
        description="IReS: Intelligent Multi-Engine Resource Scheduler",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("validate", help="parse and validate a library dir")
    p.add_argument("library")
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("lint", help="static analysis of a library dir "
                                    "(IRES0xx diagnostics)")
    p.add_argument("library")
    p.add_argument("--workflow", default=None,
                   help="restrict workflow-scoped passes to one workflow")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="report format (default: text)")
    p.add_argument("--strict", action="store_true",
                   help="also fail on warnings")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("analyze", help="concurrency-correctness passes "
                       "(IRES050–063) over Python source")
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to analyze (default: src)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="report format (default: text)")
    p.add_argument("--strict", action="store_true",
                   help="also fail on warnings")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("engines", help="list deployed engines")
    p.set_defaults(func=cmd_engines)

    for name, func, help_text in (
        ("plan", cmd_plan, "materialize a workflow"),
        ("execute", cmd_execute, "plan and run a workflow"),
        ("frontier", cmd_frontier, "Pareto time/cost frontier of a workflow"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("library")
        p.add_argument("workflow")
        p.set_defaults(func=func)
        if name == "plan":
            p.add_argument("--cache-stats", action="store_true",
                           help="also print the plan cache's hit/miss "
                                "counters")
        if name == "execute":
            p.add_argument("--plan-cache", default=True,
                           action=argparse.BooleanOptionalAction,
                           help="memoize plans across runs and replans "
                                "(default: on; --no-plan-cache disables)")
            p.add_argument("--repeat", type=int, default=1, metavar="N",
                           help="execute the workflow N times in-process "
                                "(repeated runs hit the plan cache)")
            p.add_argument("--trace", default=None, metavar="FILE",
                           help="write a Chrome trace-event JSON of the run "
                                "(Perfetto-loadable)")
            p.add_argument("--profile", default=None, metavar="FILE",
                           help="sample the run with the statistical "
                                "profiler; write speedscope JSON to FILE "
                                "and an HTML flamegraph next to it")
            p.add_argument("--fail-rate", type=float, default=0.0,
                           help="inject transient faults into every engine "
                                "with this probability")
            p.add_argument("--chaos-seed", type=int, default=0,
                           help="seed of the transient fault RNG streams")
            p.add_argument("--no-resilience", action="store_true",
                           help="disable retries/breakers (replan on first "
                                "error, the pre-resilience behaviour)")
            p.add_argument("--ledger", default=None, metavar="FILE",
                           help="record a predicted-vs-actual accuracy "
                                "ledger (JSONL) and enable drift alarms")
            p.add_argument("--drift-threshold", type=float, default=0.5,
                           help="EWMA relative-error threshold for drift "
                                "alarms (with --ledger; default 0.5)")
            p.add_argument("--journal-dir", default=None, metavar="DIR",
                           help="write-ahead journal the run under DIR "
                                "(one JSONL per run); makes interrupted "
                                "runs resumable via `ires runs recover`")
            p.add_argument("--crash-after-step", type=int, default=None,
                           metavar="N",
                           help="crash-test hook: SIGKILL this process "
                                "after journaling N finished steps "
                                "(requires --journal-dir)")

    p = sub.add_parser("explain", help="why the planner chose each engine "
                                       "(plan provenance)")
    p.add_argument("library")
    p.add_argument("workflow")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="report format (default: text)")
    p.add_argument("--ledger", default=None, metavar="FILE",
                   help="annotate candidates with this ledger's model errors")
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("accuracy", help="prediction-accuracy ledger tools")
    acc_sub = p.add_subparsers(dest="accuracy_command", required=True)
    p = acc_sub.add_parser("report",
                           help="per-pair prediction-error statistics")
    p.add_argument("ledger_file")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="report format (default: text)")
    p.add_argument("--html", default=None, metavar="FILE",
                   help="also write a self-contained HTML report")
    p.add_argument("--threshold", type=float, default=None,
                   help="drift threshold drawn on the HTML charts")
    p.set_defaults(func=cmd_accuracy_report)

    p = sub.add_parser("trace", help="inspect trace files written by --trace")
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    p = trace_sub.add_parser("summarize",
                             help="per-phase totals and the critical path")
    p.add_argument("trace_file")
    p.add_argument("--self-time", action="store_true", dest="self_time",
                   help="add a profiler-attributed self-CPU column "
                        "(needs a profile next to the trace or --profile)")
    p.add_argument("--profile", default=None, metavar="FILE",
                   help="speedscope profile supplying the self-time "
                        "column (default: <trace>.profile.json)")
    p.set_defaults(func=cmd_trace_summarize)

    p = sub.add_parser("profile", help="statistical sampling profiler "
                                       "(record, report, diff)")
    prof_sub = p.add_subparsers(dest="profile_command", required=True)
    p = prof_sub.add_parser("record",
                            help="profile a plan+execute of one workflow")
    p.add_argument("library")
    p.add_argument("workflow")
    p.add_argument("--out", default="profile.json", metavar="FILE",
                   help="speedscope JSON output (default profile.json); "
                        "an HTML flamegraph lands next to it")
    p.add_argument("--hz", type=float, default=199.0,
                   help="sampling rate (default 199)")
    p.add_argument("--mode", choices=("wall", "cpu"), default="wall",
                   help="wall samples every tick; cpu skips idle ticks")
    p.add_argument("--allocations", action="store_true",
                   help="also track tracemalloc allocations per span")
    p.set_defaults(func=cmd_profile_record)
    p = prof_sub.add_parser("report",
                            help="hot functions + attribution of a profile")
    p.add_argument("profile_file")
    p.add_argument("--limit", type=int, default=15,
                   help="hot functions to show (default 15)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="report format (default: text)")
    p.set_defaults(func=cmd_profile_report)
    p = prof_sub.add_parser("diff",
                            help="self-time deltas between two profiles")
    p.add_argument("base")
    p.add_argument("other")
    p.add_argument("--limit", type=int, default=20,
                   help="rows to show (default 20)")
    p.set_defaults(func=cmd_profile_diff)

    p = sub.add_parser("report", help="collect benchmark results into one file")
    p.add_argument("--results", default="benchmarks/results",
                   help="directory of figure/table outputs")
    p.add_argument("--out", default="RESULTS.md", help="output markdown file")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("serve", help="run the async execution service "
                                     "over HTTP")
    p.add_argument("library")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8080,
                   help="bind port (0 picks an ephemeral port; default 8080)")
    p.add_argument("--workers", type=int, default=4,
                   help="concurrent runs (default 4)")
    p.add_argument("--queue-limit", type=int, default=16,
                   help="max queued submissions before 429s (default 16)")
    p.add_argument("--tenant-quota", type=int, default=None,
                   help="max queued+running runs per tenant (default: none)")
    p.add_argument("--journal-dir", default=None, metavar="DIR",
                   help="journal every run under DIR; interrupted runs are "
                        "resumed on startup")
    p.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                   help="default wall-clock deadline per run")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   metavar="SECONDS",
                   help="graceful-drain budget on shutdown (default 30)")
    p.add_argument("--slo-config", default=None, metavar="FILE",
                   help="JSON file of SLO specs ({\"slos\": [...]}); "
                        "default: built-in availability/latency/queue-wait "
                        "objectives")
    p.add_argument("--cluster", action="store_true",
                   help="execute runs on one shared contended cluster "
                        "instead of isolated per-run clusters")
    p.add_argument("--cluster-policy", default="dagps",
                   choices=["fifo", "fair", "dagps"],
                   help="shared-cluster step dequeueing policy "
                        "(default dagps)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("tenants", help="per-tenant usage accounting "
                                       "from a live service")
    p.add_argument("--server", required=True, metavar="URL",
                   help="a running `ires serve` base URL")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="report format (default: text)")
    p.set_defaults(func=cmd_tenants)

    p = sub.add_parser("timeline", help="one run's merged event timeline")
    p.add_argument("run_id")
    p.add_argument("--server", default=None, metavar="URL",
                   help="a running `ires serve` base URL (full merge)")
    p.add_argument("--journal-dir", default=None, metavar="DIR",
                   help="build the timeline from the on-disk journal only")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="output format (default: text)")
    p.set_defaults(func=cmd_timeline)

    p = sub.add_parser("top", help="refreshing terminal view of a live "
                                   "service (queue, SLOs, tenants)")
    p.add_argument("--server", required=True, metavar="URL",
                   help="a running `ires serve` base URL")
    p.add_argument("--interval", type=float, default=2.0, metavar="SECONDS",
                   help="refresh period (default 2)")
    p.add_argument("--once", action="store_true",
                   help="print one frame and exit (scripts/CI)")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser("runs", help="inspect, cancel and recover runs")
    runs_sub = p.add_subparsers(dest="runs_command", required=True)
    p = runs_sub.add_parser("list", help="list runs (service or journals)")
    p.add_argument("--server", default=None, metavar="URL",
                   help="a running `ires serve` base URL")
    p.add_argument("--journal-dir", default=None, metavar="DIR",
                   help="inspect journals on disk instead")
    p.set_defaults(func=cmd_runs_list)
    p = runs_sub.add_parser("status", help="one run's state")
    p.add_argument("run_id")
    p.add_argument("--server", default=None, metavar="URL")
    p.add_argument("--journal-dir", default=None, metavar="DIR")
    p.set_defaults(func=cmd_runs_status)
    p = runs_sub.add_parser("cancel", help="cancel a queued or running run")
    p.add_argument("run_id")
    p.add_argument("--server", required=True, metavar="URL",
                   help="a running `ires serve` base URL")
    p.set_defaults(func=cmd_runs_cancel)
    p = runs_sub.add_parser("recover",
                            help="resume an interrupted journaled run")
    p.add_argument("library")
    p.add_argument("run_id")
    p.add_argument("--journal-dir", required=True, metavar="DIR")
    p.set_defaults(func=cmd_runs_recover)

    p = sub.add_parser("sql", help="optimize (and run) a multi-engine SQL query")
    p.add_argument("query")
    p.add_argument("--scale", type=float, default=1.0,
                   help="TPC-H scale factor of the demo deployment")
    p.add_argument("--execute", action="store_true",
                   help="also execute the optimized plan")
    p.set_defaults(func=cmd_sql)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
