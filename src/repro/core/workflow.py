"""Workflow graphs: abstract DAGs and materialized execution plans."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.dataset import Dataset
from repro.core.operators import AbstractOperator, MaterializedOperator

TARGET_MARKER = "$$target"


class WorkflowError(ValueError):
    """Raised for malformed or cyclic workflow graphs."""


class WorkflowCycleError(WorkflowError):
    """The workflow graph contains a cycle (not a DAG)."""


class GraphParseError(WorkflowError):
    """A graph-file defect, carrying the source line and offending token.

    The static analyzer turns these into located diagnostics; the message
    itself also names the line so bare string consumers stay informative.
    """

    def __init__(self, message: str, line_no: int | None = None,
                 token: str | None = None) -> None:
        prefix = f"line {line_no}: " if line_no is not None else ""
        suffix = f" (at {token!r})" if token else ""
        super().__init__(f"{prefix}{message}{suffix}")
        self.line_no = line_no
        self.token = token


class AbstractWorkflow:
    """A DAG of dataset and abstract-operator nodes, G(Datasets, Operators).

    Edges connect datasets to operator input ports and operators to their
    output datasets; one dataset node is designated the ``$$target``.
    Built programmatically via :meth:`add_dataset`/:meth:`add_operator`/
    :meth:`connect` or parsed from the deliverable's ``graph`` file format
    (§3.3)::

        asapServerLog,LineCount,0
        LineCount,d1,0
        d1,$$target
    """

    def __init__(self, name: str = "workflow") -> None:
        self.name = name
        self.datasets: dict[str, Dataset] = {}
        self.operators: dict[str, AbstractOperator] = {}
        self.op_inputs: dict[str, list[str]] = {}
        self.op_outputs: dict[str, list[str]] = {}
        self.producer: dict[str, str] = {}
        self.target: str | None = None
        #: graph-file line of each parsed edge (empty for programmatic DAGs)
        self.edge_lines: dict[tuple[str, str], int] = {}

    # -- construction ------------------------------------------------------
    def add_dataset(self, dataset: Dataset) -> Dataset:
        """Add a dataset node (names are unique across node kinds)."""
        if dataset.name in self.datasets or dataset.name in self.operators:
            raise WorkflowError(f"duplicate node name {dataset.name!r}")
        self.datasets[dataset.name] = dataset
        return dataset

    def add_operator(self, operator: AbstractOperator) -> AbstractOperator:
        """Add an abstract-operator node."""
        if operator.name in self.operators or operator.name in self.datasets:
            raise WorkflowError(f"duplicate node name {operator.name!r}")
        self.operators[operator.name] = operator
        self.op_inputs[operator.name] = []
        self.op_outputs[operator.name] = []
        return operator

    def connect(self, src: str, dst: str) -> None:
        """Add an edge dataset→operator (input) or operator→dataset (output)."""
        if src in self.datasets and dst in self.operators:
            self.op_inputs[dst].append(src)
        elif src in self.operators and dst in self.datasets:
            self.op_outputs[src].append(dst)
            if dst in self.producer:
                raise WorkflowError(f"dataset {dst!r} already has a producer")
            self.producer[dst] = src
        else:
            raise WorkflowError(
                f"edge {src!r}->{dst!r} must connect a dataset and an operator"
            )

    def set_target(self, dataset_name: str) -> None:
        """Designate the ``$$target`` dataset."""
        if dataset_name not in self.datasets:
            raise WorkflowError(f"unknown target dataset {dataset_name!r}")
        self.target = dataset_name

    @classmethod
    def from_graph_lines(
        cls,
        lines: Iterable[str],
        datasets: dict[str, Dataset],
        operators: dict[str, AbstractOperator],
        name: str = "workflow",
    ) -> "AbstractWorkflow":
        """Parse the ``graph`` file format given the node descriptions.

        Nodes referenced by the graph but missing from ``datasets`` are
        created as empty abstract datasets (matching the deliverable, where
        intermediate outputs like ``d1`` are empty files).
        """
        wf = cls(name)
        edges: list[tuple[str, str, int]] = []
        target: str | None = None
        target_line: int | None = None
        mentioned: list[str] = []
        for line_no, raw in enumerate(lines, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = [p.strip() for p in line.split(",")]
            if len(parts) >= 2 and parts[1] == TARGET_MARKER:
                if target is not None:
                    raise GraphParseError(
                        f"duplicate $$target (already {target!r})",
                        line_no, line)
                target, target_line = parts[0], line_no
                continue
            if len(parts) < 2:
                raise GraphParseError("expected 'src,dst[,order]'",
                                      line_no, line)
            edges.append((parts[0], parts[1], line_no))
            mentioned.extend(parts[:2])
        for node in mentioned:
            if node in operators:
                if node not in wf.operators:
                    wf.add_operator(operators[node])
            elif node not in wf.datasets:
                wf.add_dataset(datasets.get(node, Dataset(node)))
        for src, dst, line_no in edges:
            try:
                wf.connect(src, dst)
            except WorkflowError as exc:
                raise GraphParseError(str(exc), line_no,
                                      f"{src},{dst}") from exc
            wf.edge_lines[(src, dst)] = line_no
        if target is None:
            raise GraphParseError("graph file has no $$target line",
                                  token=TARGET_MARKER)
        try:
            wf.set_target(target)
        except WorkflowError as exc:
            raise GraphParseError(str(exc), target_line, target) from exc
        wf.validate()
        return wf

    # -- analysis ---------------------------------------------------------
    def validate(self) -> None:
        """Check that the graph is a DAG with a reachable target."""
        if self.target is None:
            raise WorkflowError("workflow has no target dataset")
        list(self.topological_operators())  # raises on cycles
        for op_name, inputs in self.op_inputs.items():
            if not self.op_outputs[op_name]:
                raise WorkflowError(f"operator {op_name!r} has no outputs")
            for ds in inputs:
                if ds not in self.datasets:
                    raise WorkflowError(f"operator {op_name!r} reads unknown {ds!r}")

    def topological_operators(self) -> Iterator[AbstractOperator]:
        """Operators in DAG topological order (depth-first, §2.2.3)."""
        visited: dict[str, int] = {}
        order: list[str] = []

        def visit(op_name: str) -> None:
            state = visited.get(op_name, 0)
            if state == 1:
                raise WorkflowCycleError("workflow graph contains a cycle")
            if state == 2:
                return
            visited[op_name] = 1
            for ds in self.op_inputs[op_name]:
                parent = self.producer.get(ds)
                if parent is not None:
                    visit(parent)
            visited[op_name] = 2
            order.append(op_name)

        for op_name in self.operators:
            visit(op_name)
        return iter(self.operators[n] for n in order)

    def source_datasets(self) -> list[Dataset]:
        """Datasets with no producer (workflow inputs)."""
        return [d for n, d in self.datasets.items() if n not in self.producer]

    @property
    def n_nodes(self) -> int:
        """Total node count (datasets + operators), the Fig 14 x-axis."""
        return len(self.datasets) + len(self.operators)

    def __repr__(self) -> str:
        return (
            f"AbstractWorkflow({self.name!r}, operators={len(self.operators)}, "
            f"datasets={len(self.datasets)}, target={self.target!r})"
        )


@dataclass(frozen=True)
class PlanStep:
    """One scheduled operator of a materialized plan."""

    operator: MaterializedOperator
    inputs: tuple[Dataset, ...]
    outputs: tuple[Dataset, ...]
    estimated_cost: float
    #: name of the abstract operator this step materializes ("" for moves)
    abstract_name: str = ""
    #: resource assignment chosen by provisioning, e.g. {"cores": 4, "memory_gb": 8}
    resources: dict = field(default_factory=dict, hash=False, compare=False)
    #: raw estimator metrics behind ``estimated_cost`` (the accuracy-ledger
    #: "predicted" side); shared with the estimator, treat as read-only
    predicted: dict = field(default_factory=dict, hash=False, compare=False)

    @property
    def engine(self) -> str | None:
        """Engine of the materialized operator."""
        return self.operator.engine

    @property
    def is_move(self) -> bool:
        """True for synthesized move/transform steps."""
        return self.operator.algorithm == "move"

    def __repr__(self) -> str:
        ins = ",".join(d.name for d in self.inputs)
        outs = ",".join(d.name for d in self.outputs)
        return (
            f"PlanStep({self.operator.name} [{self.engine}] {ins} -> {outs}, "
            f"cost={self.estimated_cost:.3g})"
        )


@dataclass
class MaterializedPlan:
    """A fully materialized execution plan: ordered steps plus its cost."""

    workflow: AbstractWorkflow
    steps: list[PlanStep]
    cost: float

    def engines_used(self) -> set[str]:
        """Engines of the plan's non-move steps."""
        return {s.engine for s in self.steps if not s.is_move}

    def step_for_operator(self, abstract_name: str) -> PlanStep | None:
        """Find the step materializing the given abstract operator, if any."""
        for step in self.steps:
            if step.abstract_name == abstract_name:
                return step
        return None

    def __repr__(self) -> str:
        chain = " | ".join(
            f"{s.operator.name}@{s.engine}" for s in self.steps
        )
        return f"MaterializedPlan(cost={self.cost:.4g}: {chain})"
