"""IReS core: meta-data framework, operator library, planner, modeler."""

from repro.core.adaptive import AdaptiveProfiler
from repro.core.dataset import Dataset
from repro.core.estimators import (
    ModelBackedEstimator,
    OracleEstimator,
    monetary_cost,
    resources_for,
    workload_from_inputs,
)
from repro.core.libraryfs import LoadReport, dump_asap_library, load_asap_library
from repro.core.modeler import Modeler, OperatorModel
from repro.core.pareto import ParetoPlan, ParetoPlanner
from repro.core.plancache import PlanCache
from repro.core.platform import IReS
from repro.core.profiler import Profiler, ProfileSpec
from repro.core.provisioning import ProvisioningResult, ResourceProvisioner
from repro.core.refinement import ModelRefiner
from repro.core.library import OperatorLibrary
from repro.core.metadata import MetadataError, MetadataTree, WILDCARD
from repro.core.operators import (
    AbstractOperator,
    MaterializedOperator,
    MoveOperator,
    Operator,
)
from repro.core.planner import (
    CostEstimator,
    MetadataCostEstimator,
    Planner,
    PlanningError,
)
from repro.core.policy import COST, EXEC_TIME, OptimizationPolicy
from repro.core.workflow import (
    AbstractWorkflow,
    MaterializedPlan,
    PlanStep,
    WorkflowError,
)

__all__ = [
    "AbstractOperator",
    "AbstractWorkflow",
    "AdaptiveProfiler",
    "COST",
    "IReS",
    "LoadReport",
    "ModelBackedEstimator",
    "ParetoPlan",
    "ParetoPlanner",
    "dump_asap_library",
    "load_asap_library",
    "ModelRefiner",
    "Modeler",
    "OperatorModel",
    "OracleEstimator",
    "ProfileSpec",
    "Profiler",
    "ProvisioningResult",
    "ResourceProvisioner",
    "monetary_cost",
    "resources_for",
    "workload_from_inputs",
    "CostEstimator",
    "Dataset",
    "EXEC_TIME",
    "MaterializedOperator",
    "MaterializedPlan",
    "MetadataCostEstimator",
    "MetadataError",
    "MetadataTree",
    "MoveOperator",
    "Operator",
    "OperatorLibrary",
    "OptimizationPolicy",
    "PlanCache",
    "PlanStep",
    "Planner",
    "PlanningError",
    "WILDCARD",
    "WorkflowError",
]
