"""The extensible meta-data description framework (D3.3 §2.1).

Datasets and operators are described by *trees* of properties.  Only the
first levels (``Constraints``, ``Execution``, ``Optimization``) are
predefined; users attach ad-hoc subtrees underneath.  Abstract descriptions
may leave fields empty or use the ``*`` wildcard; materialized descriptions
must fill every compulsory field.

Trees are stored with **string labels kept lexicographically ordered**, which
is what makes the one-pass ``O(t)`` tree-matching of the planner possible
(D3.3 §2.2.3): two sorted label sequences are merged like a sorted-list
intersection.

The on-disk syntax is the flat ``dotted.key=value`` format the deliverable
uses throughout (e.g. ``Constraints.OpSpecification.Algorithm.name=TF_IDF``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Mapping

WILDCARD = "*"

#: Top-level subtrees the framework predefines.  Anything else is ad-hoc.
PREDEFINED_ROOTS = ("Constraints", "Execution", "Optimization")


class MetadataError(ValueError):
    """Malformed meta-data description."""


class MetadataTree:
    """A node of a meta-data tree.

    A node either holds a string ``value`` (leaf) or named children
    (internal node).  Children are kept in a plain dict but iterated in
    sorted label order, preserving the paper's lexicographic invariant.
    """

    __slots__ = ("value", "_children")

    def __init__(self, value: str | None = None) -> None:
        self.value = value
        self._children: dict[str, MetadataTree] = {}

    # -- construction --------------------------------------------------
    @classmethod
    def from_properties(cls, properties: Mapping[str, object] | Iterable[str]) -> "MetadataTree":
        """Build a tree from ``{dotted.key: value}`` or ``key=value`` lines."""
        tree = cls()
        if isinstance(properties, Mapping):
            items = properties.items()
        else:
            items = (cls._parse_line(line) for line in properties)
            items = [item for item in items if item is not None]
        for key, value in items:
            tree.set(key, value)
        return tree

    @staticmethod
    def _parse_line(line: str) -> tuple[str, str] | None:
        line = line.strip()
        if not line or line.startswith("#"):
            return None
        if "=" not in line:
            raise MetadataError(f"expected 'key=value', got {line!r}")
        key, _, value = line.partition("=")
        return key.strip(), value.strip()

    @classmethod
    def from_file(cls, path: str | Path) -> "MetadataTree":
        """Parse a description file in the deliverable's format."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_properties(handle)

    # -- mutation --------------------------------------------------------
    def set(self, dotted_key: str, value: object) -> None:
        """Set a leaf value at a dotted path, creating intermediate nodes."""
        parts = self._split(dotted_key)
        node = self
        for part in parts[:-1]:
            node = node._children.setdefault(part, MetadataTree())
        leaf = node._children.setdefault(parts[-1], MetadataTree())
        if leaf._children:
            raise MetadataError(f"{dotted_key!r} is an internal node, cannot assign a value")
        leaf.value = str(value)

    def remove(self, dotted_key: str) -> None:
        """Delete the node (leaf or subtree) at the given path."""
        parts = self._split(dotted_key)
        node = self
        for part in parts[:-1]:
            child = node._children.get(part)
            if child is None:
                return
            node = child
        node._children.pop(parts[-1], None)

    @staticmethod
    def _split(dotted_key: str) -> list[str]:
        parts = [p for p in dotted_key.split(".") if p]
        if not parts:
            raise MetadataError("empty key")
        return parts

    # -- access ----------------------------------------------------------
    def node(self, dotted_key: str) -> "MetadataTree | None":
        """Return the node at a dotted path, or None."""
        node = self
        for part in self._split(dotted_key):
            node = node._children.get(part)
            if node is None:
                return None
        return node

    def get(self, dotted_key: str, default: str | None = None) -> str | None:
        """Return the leaf value at a dotted path, or ``default``."""
        node = self.node(dotted_key)
        if node is None or node.value is None:
            return default
        return node.value

    def get_float(self, dotted_key: str, default: float | None = None) -> float | None:
        """Leaf value parsed as float (MetadataError if not numeric)."""
        value = self.get(dotted_key)
        if value is None:
            return default
        try:
            return float(value)
        except ValueError as exc:
            raise MetadataError(f"{dotted_key}={value!r} is not numeric") from exc

    def get_int(self, dotted_key: str, default: int | None = None) -> int | None:
        """Leaf value parsed as int (via float, so '1E3' works)."""
        value = self.get_float(dotted_key)
        return default if value is None else int(value)

    def children(self) -> Iterator[tuple[str, "MetadataTree"]]:
        """Iterate children in lexicographic label order."""
        for label in sorted(self._children):
            yield label, self._children[label]

    def leaves(self, prefix: str = "") -> Iterator[tuple[str, str]]:
        """Iterate ``(dotted_path, value)`` for every leaf, sorted."""
        if self.value is not None and not self._children:
            if prefix:
                yield prefix, self.value
            return
        for label, child in self.children():
            path = f"{prefix}.{label}" if prefix else label
            yield from child.leaves(path)

    def to_properties(self) -> dict[str, str]:
        """Flat ``{dotted.key: value}`` view of all leaves."""
        return dict(self.leaves())

    @property
    def is_leaf(self) -> bool:
        """True when the node has no children."""
        return not self._children

    def size(self) -> int:
        """Number of nodes in the tree (the ``t`` of the O(t) match)."""
        return 1 + sum(child.size() for child in self._children.values())

    def copy(self) -> "MetadataTree":
        """Deep copy of the subtree."""
        clone = MetadataTree(self.value)
        clone._children = {k: v.copy() for k, v in self._children.items()}
        return clone

    # -- matching ----------------------------------------------------------
    def matches(self, other: "MetadataTree") -> bool:
        """One-pass subsumption match: does ``other`` satisfy this pattern?

        ``self`` plays the role of the *abstract* (required) tree: every leaf
        it defines must exist in ``other`` with an equal value, where the
        ``*`` wildcard (on either side) matches anything.  ``other`` may
        carry arbitrarily more fields.  Complexity is O(t) thanks to the
        sorted merge over child labels.
        """
        if self.is_leaf:
            if self.value is None or self.value == WILDCARD:
                return True
            if other.is_leaf:
                return other.value == WILDCARD or other.value == self.value
            return False
        for label, required in self.children():
            provided = other._children.get(label)
            if provided is None:
                return False
            if not required.matches(provided):
                return False
        return True

    def consistent_with(self, other: "MetadataTree") -> bool:
        """Symmetric consistency: all *shared* leaves agree (wildcards pass).

        Used to check whether a dataset can be fed to an operator input as-is
        — fields present on only one side impose no constraint.
        """
        if self.is_leaf or other.is_leaf:
            if self.is_leaf and other.is_leaf:
                if self.value in (None, WILDCARD) or other.value in (None, WILDCARD):
                    return True
                return self.value == other.value
            # leaf vs subtree on the same label: structurally inconsistent
            return self.value in (None, WILDCARD) or other.value in (None, WILDCARD)
        for label, mine in self.children():
            theirs = other._children.get(label)
            if theirs is not None and not mine.consistent_with(theirs):
                return False
        return True

    def merged_with(self, other: "MetadataTree") -> "MetadataTree":
        """Return a copy of ``self`` overlaid with all leaves of ``other``."""
        merged = self.copy()
        for path, value in other.leaves():
            merged.set(path, value)
        return merged

    # -- dunder ------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetadataTree):
            return NotImplemented
        return self.to_properties() == other.to_properties()

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.to_properties().items())))

    def __repr__(self) -> str:
        props = self.to_properties()
        inner = ", ".join(f"{k}={v}" for k, v in list(props.items())[:4])
        suffix = ", ..." if len(props) > 4 else ""
        return f"MetadataTree({inner}{suffix})"
