"""The modeler: trains and serves per-(operator, engine) estimation models.

Wraps the repro.models zoo with the paper's selection rule — fit every
approximation technique, cross-validate, keep the best (D3.3 §2.2.1) — and
serves estimates to the planner.  Retraining on the growing sample store is
how online refinement (§2.2.2) manifests.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.engines.monitoring import MetricsCollector
from repro.models import Model, default_model_zoo, select_best_model
from repro.models.linear import LinearRegression
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.tracing import NULL_TRACER, Tracer

_LOG = get_logger("modeler")
_TRAININGS = REGISTRY.counter(
    "ires_modeler_trainings_total",
    "Model (re)trainings by operator pair",
    labels=("algorithm", "engine"),
)
_SAMPLES = REGISTRY.gauge(
    "ires_modeler_samples",
    "Training samples used by the last fit of each operator pair",
    labels=("algorithm", "engine"),
)
_CV_ERROR = REGISTRY.gauge(
    "ires_modeler_cv_error",
    "Cross-validation error of the winning model of each operator pair",
    labels=("algorithm", "engine"),
)


@dataclass
class OperatorModel:
    """A fitted estimator for one (algorithm, engine) pair.

    Performance of data-parallel operators is multiplicative in its drivers
    (t ≈ size/cores · const), so both features and target are fitted in
    log space — this is what keeps the *relative* estimation error (the
    paper's Fig 16 metric) low across the orders of magnitude a profiling
    grid spans.
    """

    algorithm: str
    engine: str
    feature_names: list[str]
    model: Model
    model_name: str
    n_samples: int
    cv_scores: dict[str, float]
    log_space: bool = True

    def estimate(self, features: dict[str, float]) -> float:
        """Predict execution time from a feature dict; floors at zero."""
        x = np.array([[float(features.get(n, 0.0)) for n in self.feature_names]])
        if self.log_space:
            x = np.log1p(np.abs(x))
            return max(float(np.expm1(self.model.predict(x)[0])), 0.0)
        return max(float(self.model.predict(x)[0]), 0.0)


class Modeler:
    """Trains models from collector samples and answers estimates."""

    def __init__(
        self,
        collector: MetricsCollector,
        zoo: dict | None = None,
        min_samples: int = 4,
        log_space: bool = True,
        tracer: Tracer | None = None,
    ) -> None:
        self.collector = collector
        self.zoo = zoo if zoo is not None else default_model_zoo()
        self.min_samples = min_samples
        self.log_space = log_space
        self.models: dict[tuple[str, str], OperatorModel] = {}
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def train(self, algorithm: str, engine: str,
              window: int | None = None) -> OperatorModel | None:
        """(Re)train the model for a pair from all its stored samples.

        ``window`` restricts the fit to the newest N samples (drift
        recovery).  Returns None when too few samples exist to fit anything.
        """
        with self.tracer.span(f"train:{algorithm}@{engine}", category="modeler",
                              algorithm=algorithm, engine=engine) as span:
            X, y, names = self.collector.training_matrix(algorithm, engine,
                                                         window=window)
            span.set_attribute("samples", int(len(y)))
            if len(y) < 2:
                span.set_attribute("skipped", "too few samples")
                return None
            if self.log_space:
                X = np.log1p(np.abs(X))
                y = np.log1p(np.maximum(y, 0.0))
            if len(y) < self.min_samples:
                model: Model = LinearRegression().fit(X, y)
                fitted = OperatorModel(
                    algorithm, engine, names, model, "LinearRegression", len(y),
                    {}, log_space=self.log_space,
                )
            else:
                model, winner, scores = select_best_model(X, y, zoo=self.zoo)
                fitted = OperatorModel(
                    algorithm, engine, names, model, winner, len(y), scores,
                    log_space=self.log_space,
                )
            self.models[(algorithm, engine)] = fitted
            span.set_attribute("model", fitted.model_name)
        _TRAININGS.inc(algorithm=algorithm, engine=engine)
        _SAMPLES.set(fitted.n_samples, algorithm=algorithm, engine=engine)
        cv_error = (
            fitted.cv_scores.get(fitted.model_name)
            if fitted.cv_scores else None
        )
        if cv_error is not None:
            _CV_ERROR.set(cv_error, algorithm=algorithm, engine=engine)
        _LOG.info("model_trained", algorithm=algorithm, engine=engine,
                  model=fitted.model_name, samples=fitted.n_samples,
                  cv_error=cv_error)
        return fitted

    def get(self, algorithm: str, engine: str) -> OperatorModel | None:
        """The trained model for a pair, or None."""
        return self.models.get((algorithm, engine))

    def estimate(
        self, algorithm: str, engine: str, features: dict[str, float]
    ) -> float | None:
        """Estimated execution time, or None when no model exists yet."""
        model = self.models.get((algorithm, engine))
        if model is None:
            return None
        return model.estimate(features)

    def sample_count(self, algorithm: str, engine: str) -> int:
        """Number of successful runs stored for a pair."""
        return len(self.collector.for_operator(algorithm, engine))

    def drop(self, algorithm: str, engine: str) -> None:
        """Discard a trained model (the what-if baseline of Fig 16.b)."""
        self.models.pop((algorithm, engine), None)

    # -- persistence ("the models are stored and updated in an IReS
    # library", §2) ---------------------------------------------------------
    def save(self, directory: str | Path) -> int:
        """Persist every trained model under a directory; returns the count.

        Each pair gets ``<algorithm>__<engine>.npz`` (the fitted estimator,
        pickle-free) plus a ``.json`` sidecar with the bookkeeping.
        """
        import json
        from pathlib import Path

        from repro.models.serialize import save_model

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for (algorithm, engine), fitted in self.models.items():
            stem = f"{algorithm}__{engine}".replace("/", "_")
            save_model(fitted.model, directory / f"{stem}.npz")
            meta = {
                "algorithm": algorithm,
                "engine": engine,
                "feature_names": fitted.feature_names,
                "model_name": fitted.model_name,
                "n_samples": fitted.n_samples,
                "cv_scores": fitted.cv_scores,
                "log_space": fitted.log_space,
            }
            (directory / f"{stem}.json").write_text(json.dumps(meta, indent=1))
        return len(self.models)

    def load(self, directory: str | Path) -> int:
        """Restore models saved by :meth:`save`; returns how many loaded."""
        import json
        from pathlib import Path

        from repro.models.serialize import load_model

        directory = Path(directory)
        count = 0
        for meta_path in sorted(directory.glob("*.json")):
            meta = json.loads(meta_path.read_text())
            model = load_model(meta_path.with_suffix(".npz"))
            fitted = OperatorModel(
                algorithm=meta["algorithm"],
                engine=meta["engine"],
                feature_names=list(meta["feature_names"]),
                model=model,
                model_name=meta["model_name"],
                n_samples=int(meta["n_samples"]),
                cv_scores=dict(meta["cv_scores"]),
                log_space=bool(meta["log_space"]),
            )
            self.models[(fitted.algorithm, fitted.engine)] = fitted
            count += 1
        return count
