"""Plan provenance: why the DP chose each engine, and by how much.

The planner's ``_consider`` loop already computes everything needed to
answer "why Spark and not Hadoop for step 3" — every materialized
candidate's predicted metrics, scalarized cost and cumulative total — it
just throws the losers away.  With ``Planner(record_provenance=True)``
those comparisons are captured into a :class:`PlanProvenance`: one
:class:`CandidateRecord` per candidate evaluated (feasible with its cost,
or infeasible with the reason), grouped by abstract operator, with the
winners marked once the plan is assembled.

:meth:`PlanProvenance.explain` serializes the capture into the explain
report consumed by ``ires explain`` and ``GET /explain/{run_id}``; when
given an :class:`~repro.obs.accuracy.AccuracyLedger` it annotates each
candidate with the current measured error of the model the decision
hinged on, so a reader can judge whether a 3 % predicted delta means
anything against a 40 % MAPE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.workflow import MaterializedPlan

if TYPE_CHECKING:  # import cycle: planner imports this module
    from repro.obs.accuracy import AccuracyLedger

#: infeasibility reasons recorded by the planner
REASON_INPUT_UNPRODUCIBLE = "input-unproducible"
REASON_NO_COMPATIBLE_INPUT = "no-compatible-input-format"
REASON_COST_INFEASIBLE = "cost-infeasible"


@dataclass
class CandidateRecord:
    """One materialized candidate the DP evaluated for an abstract op."""

    abstract: str        #: abstract operator name the candidate implements
    operator: str        #: materialized operator name
    algorithm: str       #: abstract algorithm (the model/ledger key)
    engine: str
    feasible: bool
    reason: str = ""     #: why infeasible ("" when feasible)
    operator_cost: float = 0.0
    total_cost: float = 0.0   #: input cost + operator cost (DP comparison key)
    predicted: dict[str, float] = field(default_factory=dict)
    chosen: bool = False

    def to_dict(self) -> dict:
        """JSON-able representation."""
        payload: dict = {
            "operator": self.operator,
            "algorithm": self.algorithm,
            "engine": self.engine,
            "feasible": self.feasible,
        }
        if self.feasible:
            payload["operatorCost"] = self.operator_cost
            payload["totalCost"] = self.total_cost
            payload["predicted"] = dict(self.predicted)
            payload["chosen"] = self.chosen
        else:
            payload["reason"] = self.reason
        return payload


class PlanProvenance:
    """The candidate comparisons behind one planning pass."""

    def __init__(self, workflow: str) -> None:
        self.workflow = workflow
        #: candidates per abstract operator, in evaluation order
        self.candidates: dict[str, list[CandidateRecord]] = {}
        self.plan_cost: float | None = None

    def note(self, record: CandidateRecord) -> None:
        """Record one evaluated candidate."""
        self.candidates.setdefault(record.abstract, []).append(record)

    def finalize(self, plan: MaterializedPlan) -> None:
        """Mark the candidates the assembled plan actually uses."""
        self.plan_cost = plan.cost
        for step in plan.steps:
            if step.is_move or not step.abstract_name:
                continue
            for record in self.candidates.get(step.abstract_name, ()):
                if (record.operator == step.operator.name
                        and record.engine == (step.engine or "")):
                    record.chosen = True
                    break

    # -- reporting -----------------------------------------------------------
    def _model_error(self, record: CandidateRecord,
                     ledger: "AccuracyLedger | None") -> dict | None:
        if ledger is None:
            return None
        stats = ledger.stats_for(record.algorithm, record.engine)
        if stats is None:
            return None
        return {
            "mape": stats.mape,
            "ewmaError": stats.ewma_error,
            "samples": stats.count,
        }

    def explain(self, ledger: "AccuracyLedger | None" = None) -> dict:
        """The explain report: per abstract operator, the decision record.

        Each step entry names the chosen candidate, every feasible
        alternative with its cost delta against the winner, the best
        rejected alternative (``bestRejected`` + ``costDelta``), and the
        infeasible candidates with their reasons.  With a ledger, each
        candidate also carries ``modelError`` — the current measured
        accuracy of the model its predicted cost came from.
        """
        steps: list[dict] = []
        for abstract, records in self.candidates.items():
            feasible = [r for r in records if r.feasible]
            infeasible = [r for r in records if not r.feasible]
            chosen = next((r for r in feasible if r.chosen), None)
            alternatives = sorted(
                (r for r in feasible if r is not chosen),
                key=lambda r: r.total_cost,
            )
            entry: dict = {
                "abstract": abstract,
                "chosen": None,
                "alternatives": [],
                "bestRejected": None,
                "costDelta": None,
                "infeasible": [
                    {"operator": r.operator, "engine": r.engine,
                     "reason": r.reason}
                    for r in infeasible
                ],
            }
            if chosen is not None:
                chosen_dict = chosen.to_dict()
                chosen_dict["modelError"] = self._model_error(chosen, ledger)
                entry["chosen"] = chosen_dict
                alt_dicts: list[dict] = []
                for alt in alternatives:
                    alt_dict = alt.to_dict()
                    alt_dict["deltaVsChosen"] = alt.total_cost - chosen.total_cost
                    alt_dict["modelError"] = self._model_error(alt, ledger)
                    alt_dicts.append(alt_dict)
                entry["alternatives"] = alt_dicts
                if alt_dicts:
                    entry["bestRejected"] = alt_dicts[0]
                    entry["costDelta"] = alt_dicts[0]["deltaVsChosen"]
            steps.append(entry)
        return {
            "workflow": self.workflow,
            "planCost": self.plan_cost,
            "steps": steps,
        }

    def __repr__(self) -> str:
        n = sum(len(v) for v in self.candidates.values())
        return (f"PlanProvenance({self.workflow!r}, "
                f"operators={len(self.candidates)}, candidates={n})")
