"""Offline operator profiling (D3.3 §2.2.1).

The profiler runs a materialized operator over a grid of input parameters —
data-specific (size/count), operator-specific (algorithm parameters) and
resource-specific (cores, memory) — against the engine, collecting the
monitored metrics of every run.  Those samples are what the modeler fits.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.engines.base import Engine
from repro.engines.errors import EngineError
from repro.engines.monitoring import MetricRecord
from repro.engines.profiles import Resources, Workload
from repro.engines.registry import MultiEngineCloud


@dataclass
class ProfileSpec:
    """The parameter space to profile one (algorithm, engine) pair over."""

    algorithm: str
    engine: str
    #: data-specific: input counts (documents, edges, rows)
    counts: list[float] = field(default_factory=lambda: [1e4, 1e5, 1e6])
    #: bytes per item, converting counts to sizes
    bytes_per_item: float = 100.0
    #: operator-specific parameter grid, e.g. {"iterations": [5, 10]}
    params: dict[str, list] = field(default_factory=dict)
    #: resource-specific grid
    resources: list[Resources] = field(
        default_factory=lambda: [Resources(cores=4, memory_gb=8.0)]
    )

    def grid(self) -> list[tuple[float, dict, Resources]]:
        """Enumerate every (count, params, resources) combination."""
        param_names = sorted(self.params)
        param_values = [self.params[k] for k in param_names]
        combos = list(itertools.product(*param_values)) if param_names else [()]
        out = []
        for count in self.counts:
            for combo in combos:
                for res in self.resources:
                    out.append((count, dict(zip(param_names, combo)), res))
        return out


class Profiler:
    """Runs profiling grids against the multi-engine cloud."""

    def __init__(self, cloud: MultiEngineCloud) -> None:
        self.cloud = cloud

    def profile(
        self,
        spec: ProfileSpec,
        max_runs: int | None = None,
        shuffle_seed: int | None = None,
    ) -> list[MetricRecord]:
        """Execute the grid (optionally a shuffled prefix of it).

        Failed runs (OOM etc.) are recorded by the engine and skipped here —
        the paper's black-box stance: a failure is also information, but the
        execution-time model only trains on successes.
        """
        engine = self.cloud.engine(spec.engine)
        grid = spec.grid()
        if shuffle_seed is not None:
            rng = np.random.default_rng(shuffle_seed)
            grid = [grid[i] for i in rng.permutation(len(grid))]
        if max_runs is not None:
            grid = grid[:max_runs]
        records: list[MetricRecord] = []
        for count, params, resources in grid:
            record = self.profile_point(engine, spec, count, params, resources)
            if record is not None:
                records.append(record)
        return records

    def profile_point(
        self,
        engine: Engine,
        spec: ProfileSpec,
        count: float,
        params: dict,
        resources: Resources,
    ) -> MetricRecord | None:
        """One profiling run; returns None when the run failed."""
        workload = Workload.of_count(count, spec.bytes_per_item, **params)
        try:
            result = engine.execute(
                spec.algorithm, workload, resources=resources,
                operator_name=f"profile:{spec.algorithm}",
            )
        except EngineError:
            return None
        return result.record

    def sample_random_setups(
        self,
        spec: ProfileSpec,
        n_runs: int,
        seed: int = 0,
    ) -> list[MetricRecord]:
        """Uniformly sample setups, the §4.3 protocol.

        "We iteratively execute the operators with different input sizes,
        number of resources and application specific parameters, uniformly
        selecting from a set of possible setups."
        """
        rng = np.random.default_rng(seed)
        engine = self.cloud.engine(spec.engine)
        records: list[MetricRecord] = []
        param_names = sorted(spec.params)
        for _ in range(n_runs):
            count = spec.counts[rng.integers(len(spec.counts))]
            params = {
                name: spec.params[name][rng.integers(len(spec.params[name]))]
                for name in param_names
            }
            resources = spec.resources[rng.integers(len(spec.resources))]
            record = self.profile_point(engine, spec, count, params, resources)
            if record is not None:
                records.append(record)
        return records
