"""Cost estimators bridging the planner to models or engine ground truth.

Two implementations of the planner's ``CostEstimator`` protocol:

- :class:`OracleEstimator` consults the simulated engines' true performance
  models — the limit case of perfectly trained estimators.  Figure 11–13
  benchmarks use it so the plan quality reflects the planner, not model
  noise.
- :class:`ModelBackedEstimator` consults the :class:`~repro.core.modeler.
  Modeler`'s learned models, which is how the deployed platform operates
  (profile offline → estimate → refine online).

Both derive the monetary-cost metric from the paper's simplified formula
``#VM · cores/VM · MM/VM · t`` (§4.4), i.e. ``cores · memory_gb · t``.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.dataset import Dataset
from repro.core.modeler import Modeler
from repro.core.operators import MaterializedOperator
from repro.engines.errors import MemoryExceededError
from repro.engines.profiles import Resources, Workload
from repro.engines.registry import MultiEngineCloud

INFEASIBLE = float("inf")


def workload_from_inputs(
    operator: MaterializedOperator, inputs: Sequence[Dataset]
) -> Workload:
    """Aggregate the operator's input datasets into a workload descriptor."""
    count = sum(d.count for d in inputs)
    size_gb = sum(d.size for d in inputs) / 1e9
    params = {}
    param_node = operator.metadata.node("Execution.Param")
    if param_node is not None:
        for key, value in param_node.leaves():
            try:
                params[key] = float(value)
            except ValueError:
                params[key] = value
    return Workload(count=count, size_gb=size_gb, params=params)


def resources_for(operator: MaterializedOperator, cloud: MultiEngineCloud) -> Resources:
    """Resources an operator runs under: explicit metadata or engine defaults."""
    cores = operator.metadata.get_int("Execution.Resources.cores")
    memory = operator.metadata.get_float("Execution.Resources.memory_gb")
    engine_name = operator.engine
    if engine_name in cloud.engines:
        default = cloud.engine(engine_name).default_resources()
    else:
        default = Resources()
    return Resources(
        cores=cores if cores is not None else default.cores,
        memory_gb=memory if memory is not None else default.memory_gb,
    )


def monetary_cost(resources: Resources, exec_time: float) -> float:
    """The §4.4 execution-cost metric: cores · memory(GB) · time."""
    if exec_time == INFEASIBLE:
        return INFEASIBLE
    return resources.cores * resources.memory_gb * exec_time


class _EstimatorBase:
    """Shared move-cost and output-size logic."""

    def __init__(self, cloud: MultiEngineCloud,
                 output_selectivity: float = 0.8) -> None:
        self.cloud = cloud
        self.output_selectivity = output_selectivity

    def move_metrics(self, dataset: Dataset, src_store: str,
                     dst_store: str) -> dict[str, float]:
        """Transfer metrics from the cloud's bandwidth model."""
        seconds = self.cloud.move_seconds(dataset.size, src_store, dst_store)
        return {"execTime": seconds, "cost": seconds}

    def output_size(self, operator: MaterializedOperator,
                    inputs: Sequence[Dataset]) -> float:
        """Output bytes = input bytes x (per-operator) selectivity."""
        selectivity = operator.metadata.get_float(
            "Optimization.outputSelectivity", self.output_selectivity
        )
        return sum(d.size for d in inputs) * selectivity

    def output_count(self, operator: MaterializedOperator,
                     inputs: Sequence[Dataset]) -> float:
        """Output cardinality = input count x count selectivity."""
        selectivity = operator.metadata.get_float(
            "Optimization.countSelectivity", 1.0
        )
        return sum(d.count for d in inputs) * selectivity


class OracleEstimator(_EstimatorBase):
    """Ground-truth estimator over the simulated engines' profiles."""

    def operator_metrics(self, operator: MaterializedOperator,
                         inputs: Sequence[Dataset]) -> dict[str, float]:
        """True metrics from the engine's performance profile."""
        engine_name = operator.engine
        algorithm = operator.algorithm
        workload = workload_from_inputs(operator, inputs)
        resources = resources_for(operator, self.cloud)
        engine = self.cloud.engines.get(engine_name)
        if engine is None or not engine.supports(algorithm):
            # fall back on static metadata costs
            return {
                "execTime": operator.metadata.get_float("Optimization.execTime", INFEASIBLE),
                "cost": operator.metadata.get_float("Optimization.cost", INFEASIBLE),
            }
        try:
            seconds = engine.true_seconds(algorithm, workload, resources)
        except MemoryExceededError:
            return {"execTime": INFEASIBLE, "cost": INFEASIBLE}
        return {"execTime": seconds, "cost": monetary_cost(resources, seconds)}


class ModelBackedEstimator(_EstimatorBase):
    """Estimator over the learned models; falls back to static metadata.

    When a model predicts for an operator/engine whose simulated profile
    would OOM, the learned model has no way to know — exactly like the real
    platform, where infeasibility only shows up as failed runs.  Failed-run
    awareness can be injected by registering infeasibility hints.
    """

    def __init__(
        self,
        cloud: MultiEngineCloud,
        modeler: Modeler,
        output_selectivity: float = 0.8,
        fallback: bool = True,
    ) -> None:
        super().__init__(cloud, output_selectivity)
        self.modeler = modeler
        self.fallback = fallback

    def operator_metrics(self, operator: MaterializedOperator,
                         inputs: Sequence[Dataset]) -> dict[str, float]:
        """Metrics predicted by the learned model (metadata fallback)."""
        workload = workload_from_inputs(operator, inputs)
        resources = resources_for(operator, self.cloud)
        features = {
            "input_size": workload.size_gb * 1e9,
            "input_count": workload.count,
            "cores": float(resources.cores),
            "memory_gb": resources.memory_gb,
        }
        for key, value in workload.params.items():
            try:
                features[f"param_{key}"] = float(value)
            except (TypeError, ValueError):
                continue
        seconds = self.modeler.estimate(operator.algorithm, operator.engine, features)
        if seconds is None:
            if not self.fallback:
                return {"execTime": INFEASIBLE, "cost": INFEASIBLE}
            seconds = operator.metadata.get_float("Optimization.execTime", INFEASIBLE)
        return {"execTime": seconds, "cost": monetary_cost(resources, seconds)}
