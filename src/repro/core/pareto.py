"""Pareto-frontier workflow planning — the §2.2.3 extension.

The paper's planner optimizes a single scalarized metric and notes: "We are
currently investigating methods for optimizing multiple dimensions of
performance metrics, such as finding Pareto frontier execution plans."
This module implements that extension: the dpTable keeps, per dataset
format, the set of *mutually non-dominated* plans over a metric vector
(execution time, monetary cost, ...), and the planner returns the whole
frontier at the target so the user can pick a trade-off after the fact.

Frontier sizes are bounded (``max_frontier``) by thinning evenly along the
first metric, which keeps the DP polynomial while preserving the extremes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.dataset import Dataset
from repro.core.library import OperatorLibrary
from repro.core.operators import MaterializedOperator
from repro.core.planner import CostEstimator, MetadataCostEstimator, PlanningError
from repro.core.workflow import AbstractWorkflow, MaterializedPlan, PlanStep

INFEASIBLE = float("inf")


def dominates(a: tuple[float, ...], b: tuple[float, ...]) -> bool:
    """Pareto dominance for minimization."""
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def prune_frontier(entries: list["_ParetoEntry"], max_size: int) -> list["_ParetoEntry"]:
    """Drop dominated entries; thin to ``max_size`` along the first metric."""
    entries = sorted(entries, key=lambda e: e.metrics)
    kept: list[_ParetoEntry] = []
    for entry in entries:
        if any(dominates(other.metrics, entry.metrics) for other in kept):
            continue
        kept = [k for k in kept if not dominates(entry.metrics, k.metrics)]
        kept.append(entry)
    kept.sort(key=lambda e: e.metrics[0])
    if len(kept) <= max_size:
        return kept
    # keep the extremes, thin evenly in between
    idx = np.linspace(0, len(kept) - 1, max_size).round().astype(int)
    return [kept[i] for i in sorted(set(idx.tolist()))]


class _ParetoEntry:
    """One frontier point: a dataset format, a metric vector, a plan DAG."""

    __slots__ = ("dataset", "metrics", "step", "parents")

    def __init__(
        self,
        dataset: Dataset,
        metrics: tuple[float, ...],
        step: PlanStep | None = None,
        parents: tuple["_ParetoEntry", ...] = (),
    ) -> None:
        self.dataset = dataset
        self.metrics = metrics
        self.step = step
        self.parents = parents

    def collect_steps(self) -> list[PlanStep]:
        """Topologically ordered, deduplicated steps of this entry's plan."""
        seen: set[int] = set()
        ordered: list[PlanStep] = []

        def visit(entry: "_ParetoEntry") -> None:
            if id(entry) in seen:
                return
            seen.add(id(entry))
            for parent in entry.parents:
                visit(parent)
            if entry.step is not None:
                ordered.append(entry.step)

        visit(self)
        unique, emitted = [], set()
        for step in ordered:
            if id(step) not in emitted:
                emitted.add(id(step))
                unique.append(step)
        return unique


class ParetoPlan(MaterializedPlan):
    """A frontier plan annotated with its full metric vector."""

    def __init__(self, workflow: AbstractWorkflow, steps: list[PlanStep],
                 metrics: dict[str, float]) -> None:
        super().__init__(workflow, steps, cost=next(iter(metrics.values())))
        self.metrics = metrics


class ParetoPlanner:
    """Multi-objective variant of Algorithm 1 returning a plan frontier."""

    def __init__(
        self,
        library: OperatorLibrary,
        estimator: CostEstimator | None = None,
        metrics: Sequence[str] = ("execTime", "cost"),
        max_frontier: int = 16,
        allow_moves: bool = True,
    ) -> None:
        if len(metrics) < 2:
            raise ValueError("Pareto planning needs at least two metrics")
        self.library = library
        self.estimator = estimator if estimator is not None else MetadataCostEstimator()
        self.metrics = tuple(metrics)
        self.max_frontier = max_frontier
        self.allow_moves = allow_moves

    # -- public ----------------------------------------------------------
    def plan_frontier(
        self,
        workflow: AbstractWorkflow,
        available_engines: set[str] | None = None,
    ) -> list[ParetoPlan]:
        """All Pareto-optimal plans for the workflow's target dataset."""
        workflow.validate()
        dp: dict[str, dict[tuple, list[_ParetoEntry]]] = {}
        zeros = tuple(0.0 for _ in self.metrics)
        for name, dataset in workflow.datasets.items():
            if dataset.materialized:
                dp[name] = {dataset.signature(): [_ParetoEntry(dataset, zeros)]}

        for abstract_op in workflow.topological_operators():
            in_names = workflow.op_inputs[abstract_op.name]
            out_names = workflow.op_outputs[abstract_op.name]
            matches = self.library.find_materialized(abstract_op, available_engines)
            for mat_op in matches:
                self._consider(dp, workflow, abstract_op.name, mat_op,
                               in_names, out_names)

        target_slots = dp.get(workflow.target)
        if not target_slots:
            raise PlanningError(
                f"no feasible plan produces target {workflow.target!r}")
        frontier = prune_frontier(
            [e for entries in target_slots.values() for e in entries],
            self.max_frontier,
        )
        plans = []
        for entry in frontier:
            metrics = dict(zip(self.metrics, entry.metrics))
            plans.append(ParetoPlan(workflow, entry.collect_steps(), metrics))
        return plans

    # -- internals ---------------------------------------------------------
    def _vector(self, metrics: dict[str, float]) -> tuple[float, ...] | None:
        values = tuple(float(metrics.get(m, INFEASIBLE)) for m in self.metrics)
        if any(v == INFEASIBLE for v in values):
            return None
        return values

    @staticmethod
    def _add(a: tuple[float, ...], b: tuple[float, ...]) -> tuple[float, ...]:
        return tuple(x + y for x, y in zip(a, b))

    def _input_options(
        self, entries: list[_ParetoEntry], mat_op: MaterializedOperator,
        i: int,
    ) -> list[_ParetoEntry]:
        """Frontier of ways to provide input ``i`` (direct or via a move)."""
        options: list[_ParetoEntry] = []
        for entry in entries:
            if mat_op.accepts_input(entry.dataset, i):
                options.append(entry)
            elif self.allow_moves:
                moved = self._move(entry, mat_op, i)
                if moved is not None:
                    options.append(moved)
        return prune_frontier(options, self.max_frontier)

    def _move(self, entry: _ParetoEntry, mat_op: MaterializedOperator,
              i: int) -> "_ParetoEntry | None":
        spec = mat_op.input_spec(i)
        if spec.is_leaf:
            return None
        src = entry.dataset
        dst_store = spec.get("Engine.FS") or spec.get("Engine") or mat_op.engine
        move_vec = self._vector(
            self.estimator.move_metrics(src, src.store, dst_store))
        if move_vec is None:
            return None
        moved = Dataset(src.name, src.metadata.copy())
        for path, value in spec.leaves():
            moved.metadata.set(f"Constraints.{path}", value)
        if not mat_op.accepts_input(moved, i):
            return None
        from repro.core.operators import MoveOperator

        move_op = MoveOperator(src.store or "unknown", dst_store or "unknown",
                               src.fmt, moved.fmt)
        step = PlanStep(operator=move_op, inputs=(src,), outputs=(moved,),
                        estimated_cost=move_vec[0])
        return _ParetoEntry(moved, self._add(entry.metrics, move_vec),
                            step, (entry,))

    def _consider(
        self,
        dp: dict[str, dict[str, list[_ParetoEntry]]],
        workflow: AbstractWorkflow,
        abstract_name: str,
        mat_op: MaterializedOperator,
        in_names: list[str],
        out_names: list[str],
    ) -> None:
        # frontier of input combinations, built incrementally with pruning
        combos: list[tuple[tuple[float, ...], tuple[_ParetoEntry, ...]]] = [
            (tuple(0.0 for _ in self.metrics), ())
        ]
        for i, in_name in enumerate(in_names):
            slots = dp.get(in_name)
            if not slots:
                return
            options = self._input_options(
                [e for entries in slots.values() for e in entries], mat_op, i)
            if not options:
                return
            extended = [
                (self._add(vec, opt.metrics), parents + (opt,))
                for vec, parents in combos
                for opt in options
            ]
            # prune combined partial vectors to keep the product bounded
            wrapped = [
                _ParetoEntry(None, vec, None, parents)  # type: ignore[arg-type]
                for vec, parents in extended
            ]
            pruned = prune_frontier(wrapped, self.max_frontier)
            combos = [(e.metrics, e.parents) for e in pruned]

        for vec, parents in combos:
            input_datasets = [p.dataset for p in parents]
            op_vec = self._vector(
                self.estimator.operator_metrics(mat_op, input_datasets))
            if op_vec is None:
                continue
            total = self._add(vec, op_vec)
            outputs = []
            out_size = self.estimator.output_size(mat_op, input_datasets)
            out_count = self.estimator.output_count(mat_op, input_datasets)
            for i, out_name in enumerate(out_names):
                out_ds = mat_op.output_for(workflow.datasets[out_name], i)
                out_ds.size = out_size
                out_ds.count = out_count
                outputs.append(out_ds)
            step = PlanStep(
                operator=mat_op, inputs=tuple(input_datasets),
                outputs=tuple(outputs), estimated_cost=op_vec[0],
                abstract_name=abstract_name,
            )
            entry_parents = tuple(parents)
            for out_ds in outputs:
                slot = dp.setdefault(out_ds.name, {})
                entries = slot.setdefault(out_ds.signature(), [])
                entries.append(_ParetoEntry(out_ds, total, step, entry_parents))
                slot[out_ds.signature()] = prune_frontier(
                    entries, self.max_frontier)
