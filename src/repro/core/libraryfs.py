"""Filesystem layout of the IReS library (the §3 ``asapLibrary/`` tree).

The deliverable defines artefacts as description files::

    asapLibrary/
      datasets/<name>                 dataset descriptions
      operators/<name>/description    materialized operator descriptions
      abstractOperators/<name>        abstract operator descriptions
      abstractWorkflows/<wf>/graph    workflow graphs (…,$$target lines)

:func:`load_asap_library` populates an :class:`~repro.core.platform.IReS`
instance from such a tree; :func:`dump_asap_library` writes one back out, so
libraries round-trip between the Python API and the on-disk format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.dataset import Dataset
from repro.core.metadata import MetadataError, MetadataTree
from repro.core.operators import AbstractOperator, MaterializedOperator
from repro.core.platform import IReS
from repro.core.workflow import (
    AbstractWorkflow,
    GraphParseError,
    WorkflowCycleError,
    WorkflowError,
)
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY

if TYPE_CHECKING:  # the analysis package imports this module's constants,
    # so the Diagnostic import stays lazy to keep the import graph acyclic
    from repro.analysis.diagnostics import Diagnostic

_LOG = get_logger("library")
_LOAD_ERRORS = REGISTRY.counter(
    "ires_library_load_errors_total",
    "Artefacts the library loader could not register, by kind "
    "(dataset / operator / abstract / workflow)",
    labels=("kind",),
)

DATASETS_DIR = "datasets"
OPERATORS_DIR = "operators"
ABSTRACT_OPS_DIR = "abstractOperators"
WORKFLOWS_DIR = "abstractWorkflows"
DESCRIPTION_FILE = "description"
GRAPH_FILE = "graph"


class LibraryLayoutError(ValueError):
    """The directory does not follow the asapLibrary layout."""


@dataclass
class LoadReport:
    """What :func:`load_asap_library` found, registered — and could not.

    Malformed artefacts are never dropped silently: each failure becomes a
    located :class:`~repro.analysis.diagnostics.Diagnostic` here (and one
    tick of the ``ires_library_load_errors_total`` metric), which ``ires
    lint`` folds into its report.
    """

    datasets: list[str] = field(default_factory=list)
    operators: list[str] = field(default_factory=list)
    abstract_operators: list[str] = field(default_factory=list)
    workflows: list[str] = field(default_factory=list)
    #: one diagnostic per artefact the loader had to skip
    diagnostics: "list[Diagnostic]" = field(default_factory=list)

    def total(self) -> int:
        """Total number of artefacts loaded."""
        return (len(self.datasets) + len(self.operators)
                + len(self.abstract_operators) + len(self.workflows))

    @property
    def load_errors(self) -> int:
        """How many artefacts failed to load."""
        return len(self.diagnostics)

    def record_skip(self, kind: str, name: str, code: str, message: str,
                    location: str, hint: str = "") -> None:
        """Register one skipped artefact: diagnostic + metric + log line."""
        from repro.analysis.diagnostics import Diagnostic

        self.diagnostics.append(Diagnostic.make(
            code, message, artifact=f"{kind}:{name}", location=location,
            hint=hint or "fix the file; the artefact was not registered",
        ))
        _LOAD_ERRORS.inc(kind=kind)
        _LOG.warning("artifact_skipped", kind=kind, name=name, code=code,
                     location=location, reason=message)


def load_asap_library(root: str | Path, ires: IReS) -> LoadReport:
    """Register every artefact under ``root`` with the platform.

    Workflows are parsed eagerly (they may reference library datasets and
    abstract operators, which are loaded first) and stored on the platform
    as ``ires.workflows[name]``.
    """
    root = Path(root)
    if not root.is_dir():
        raise LibraryLayoutError(f"{root} is not a directory")
    report = LoadReport()

    datasets_dir = root / DATASETS_DIR
    if datasets_dir.is_dir():
        for path in sorted(datasets_dir.iterdir()):
            if path.is_file():
                try:
                    ires.register_dataset(Dataset.from_file(path.name, path))
                except MetadataError as exc:
                    report.record_skip(
                        "dataset", path.name, "IRES001",
                        f"cannot parse dataset description: {exc}",
                        f"{DATASETS_DIR}/{path.name}")
                    continue
                report.datasets.append(path.name)

    operators_dir = root / OPERATORS_DIR
    if operators_dir.is_dir():
        for op_dir in sorted(operators_dir.iterdir()):
            if not op_dir.is_dir():
                continue
            description = op_dir / DESCRIPTION_FILE
            if not description.is_file():
                report.record_skip(
                    "operator", op_dir.name, "IRES001",
                    "operator directory has no description file",
                    f"{OPERATORS_DIR}/{op_dir.name}",
                    hint=f"add {OPERATORS_DIR}/{op_dir.name}/"
                         f"{DESCRIPTION_FILE}")
                continue
            try:
                ires.register_operator(
                    MaterializedOperator.from_file(op_dir.name, description))
            except MetadataError as exc:
                report.record_skip(
                    "operator", op_dir.name, "IRES001",
                    f"cannot parse operator description: {exc}",
                    f"{OPERATORS_DIR}/{op_dir.name}/{DESCRIPTION_FILE}")
                continue
            report.operators.append(op_dir.name)

    abstract_dir = root / ABSTRACT_OPS_DIR
    if abstract_dir.is_dir():
        for path in sorted(abstract_dir.iterdir()):
            if path.is_file():
                try:
                    ires.register_abstract(
                        AbstractOperator.from_file(path.name, path))
                except MetadataError as exc:
                    report.record_skip(
                        "abstract", path.name, "IRES001",
                        f"cannot parse abstract-operator description: {exc}",
                        f"{ABSTRACT_OPS_DIR}/{path.name}")
                    continue
                report.abstract_operators.append(path.name)

    workflows_dir = root / WORKFLOWS_DIR
    if workflows_dir.is_dir():
        for wf_dir in sorted(workflows_dir.iterdir()):
            graph = wf_dir / GRAPH_FILE
            if not (wf_dir.is_dir() and graph.is_file()):
                continue
            _load_workflow(ires, report, wf_dir, graph)
    return report


def _load_workflow(ires: IReS, report: LoadReport, wf_dir: Path,
                   graph: Path) -> None:
    """Parse one workflow folder, downgrading failures to diagnostics."""
    graph_location = f"{WORKFLOWS_DIR}/{wf_dir.name}/{GRAPH_FILE}"
    # a workflow folder may carry its own dataset/abstract-operator
    # descriptions (§3.3 step 4.a)
    local_datasets = dict(ires.datasets)
    wf_ds_dir = wf_dir / DATASETS_DIR
    if wf_ds_dir.is_dir():
        for path in sorted(wf_ds_dir.iterdir()):
            if path.is_file() and path.stat().st_size > 0:
                try:
                    local_datasets[path.name] = Dataset.from_file(
                        path.name, path)
                except MetadataError as exc:
                    report.record_skip(
                        "dataset", path.name, "IRES001",
                        f"cannot parse workflow-local dataset: {exc}",
                        f"{WORKFLOWS_DIR}/{wf_dir.name}/{DATASETS_DIR}/"
                        f"{path.name}")
    local_ops = dict(ires.abstract_operators)
    wf_op_dir = wf_dir / OPERATORS_DIR
    if wf_op_dir.is_dir():
        for path in sorted(wf_op_dir.iterdir()):
            if path.is_file():
                try:
                    local_ops[path.name] = AbstractOperator.from_file(
                        path.name, path)
                except MetadataError as exc:
                    report.record_skip(
                        "abstract", path.name, "IRES001",
                        f"cannot parse workflow-local operator: {exc}",
                        f"{WORKFLOWS_DIR}/{wf_dir.name}/{OPERATORS_DIR}/"
                        f"{path.name}")
    try:
        workflow = AbstractWorkflow.from_graph_lines(
            graph.read_text().splitlines(), local_datasets, local_ops,
            name=wf_dir.name,
        )
    except WorkflowCycleError as exc:
        report.record_skip("workflow", wf_dir.name, "IRES020", str(exc),
                           graph_location,
                           hint="break the cycle; workflows must be DAGs")
        return
    except GraphParseError as exc:
        location = graph_location
        if exc.line_no is not None:
            location = f"{graph_location}:{exc.line_no}"
        report.record_skip("workflow", wf_dir.name, "IRES025", str(exc),
                           location)
        return
    except WorkflowError as exc:
        report.record_skip("workflow", wf_dir.name, "IRES025", str(exc),
                           graph_location)
        return
    ires.workflows[wf_dir.name] = workflow
    report.workflows.append(wf_dir.name)


def dump_asap_library(ires: IReS, root: str | Path) -> None:
    """Write the platform's artefacts back out in the asapLibrary layout."""
    root = Path(root)
    (root / DATASETS_DIR).mkdir(parents=True, exist_ok=True)
    for name, dataset in ires.datasets.items():
        _write_properties(root / DATASETS_DIR / name, dataset.metadata)
    (root / ABSTRACT_OPS_DIR).mkdir(parents=True, exist_ok=True)
    for name, operator in ires.abstract_operators.items():
        _write_properties(root / ABSTRACT_OPS_DIR / name, operator.metadata)
    for operator in ires.library:
        op_dir = root / OPERATORS_DIR / operator.name
        op_dir.mkdir(parents=True, exist_ok=True)
        _write_properties(op_dir / DESCRIPTION_FILE, operator.metadata)
    for name, workflow in getattr(ires, "workflows", {}).items():
        wf_dir = root / WORKFLOWS_DIR / name
        wf_dir.mkdir(parents=True, exist_ok=True)
        lines = []
        for op_name, inputs in workflow.op_inputs.items():
            for ds in inputs:
                lines.append(f"{ds},{op_name},0")
        for op_name, outputs in workflow.op_outputs.items():
            for ds in outputs:
                lines.append(f"{op_name},{ds},0")
        lines.append(f"{workflow.target},$$target")
        (wf_dir / GRAPH_FILE).write_text("\n".join(lines) + "\n")


def _write_properties(path: Path, metadata: MetadataTree) -> None:
    lines = [f"{key}={value}" for key, value in metadata.leaves()]
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
