"""Filesystem layout of the IReS library (the §3 ``asapLibrary/`` tree).

The deliverable defines artefacts as description files::

    asapLibrary/
      datasets/<name>                 dataset descriptions
      operators/<name>/description    materialized operator descriptions
      abstractOperators/<name>        abstract operator descriptions
      abstractWorkflows/<wf>/graph    workflow graphs (…,$$target lines)

:func:`load_asap_library` populates an :class:`~repro.core.platform.IReS`
instance from such a tree; :func:`dump_asap_library` writes one back out, so
libraries round-trip between the Python API and the on-disk format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.core.dataset import Dataset
from repro.core.operators import AbstractOperator, MaterializedOperator
from repro.core.platform import IReS
from repro.core.workflow import AbstractWorkflow

DATASETS_DIR = "datasets"
OPERATORS_DIR = "operators"
ABSTRACT_OPS_DIR = "abstractOperators"
WORKFLOWS_DIR = "abstractWorkflows"
DESCRIPTION_FILE = "description"
GRAPH_FILE = "graph"


class LibraryLayoutError(ValueError):
    """The directory does not follow the asapLibrary layout."""


@dataclass
class LoadReport:
    """What :func:`load_asap_library` found and registered."""

    datasets: list[str] = field(default_factory=list)
    operators: list[str] = field(default_factory=list)
    abstract_operators: list[str] = field(default_factory=list)
    workflows: list[str] = field(default_factory=list)

    def total(self) -> int:
        """Total number of artefacts loaded."""
        return (len(self.datasets) + len(self.operators)
                + len(self.abstract_operators) + len(self.workflows))


def load_asap_library(root, ires: IReS) -> LoadReport:
    """Register every artefact under ``root`` with the platform.

    Workflows are parsed eagerly (they may reference library datasets and
    abstract operators, which are loaded first) and stored on the platform
    as ``ires.workflows[name]``.
    """
    root = Path(root)
    if not root.is_dir():
        raise LibraryLayoutError(f"{root} is not a directory")
    report = LoadReport()

    datasets_dir = root / DATASETS_DIR
    if datasets_dir.is_dir():
        for path in sorted(datasets_dir.iterdir()):
            if path.is_file():
                ires.register_dataset(Dataset.from_file(path.name, path))
                report.datasets.append(path.name)

    operators_dir = root / OPERATORS_DIR
    if operators_dir.is_dir():
        for op_dir in sorted(operators_dir.iterdir()):
            description = op_dir / DESCRIPTION_FILE
            if op_dir.is_dir() and description.is_file():
                ires.register_operator(
                    MaterializedOperator.from_file(op_dir.name, description))
                report.operators.append(op_dir.name)

    abstract_dir = root / ABSTRACT_OPS_DIR
    if abstract_dir.is_dir():
        for path in sorted(abstract_dir.iterdir()):
            if path.is_file():
                ires.register_abstract(AbstractOperator.from_file(path.name, path))
                report.abstract_operators.append(path.name)

    workflows_dir = root / WORKFLOWS_DIR
    if workflows_dir.is_dir():
        for wf_dir in sorted(workflows_dir.iterdir()):
            graph = wf_dir / GRAPH_FILE
            if not (wf_dir.is_dir() and graph.is_file()):
                continue
            # a workflow folder may carry its own dataset/abstract-operator
            # descriptions (§3.3 step 4.a)
            local_datasets = dict(ires.datasets)
            wf_ds_dir = wf_dir / DATASETS_DIR
            if wf_ds_dir.is_dir():
                for path in sorted(wf_ds_dir.iterdir()):
                    if path.is_file() and path.stat().st_size > 0:
                        local_datasets[path.name] = Dataset.from_file(
                            path.name, path)
            local_ops = dict(ires.abstract_operators)
            wf_op_dir = wf_dir / OPERATORS_DIR
            if wf_op_dir.is_dir():
                for path in sorted(wf_op_dir.iterdir()):
                    if path.is_file():
                        local_ops[path.name] = AbstractOperator.from_file(
                            path.name, path)
            workflow = AbstractWorkflow.from_graph_lines(
                graph.read_text().splitlines(), local_datasets, local_ops,
                name=wf_dir.name,
            )
            ires.workflows[wf_dir.name] = workflow
            report.workflows.append(wf_dir.name)
    return report


def dump_asap_library(ires: IReS, root) -> None:
    """Write the platform's artefacts back out in the asapLibrary layout."""
    root = Path(root)
    (root / DATASETS_DIR).mkdir(parents=True, exist_ok=True)
    for name, dataset in ires.datasets.items():
        _write_properties(root / DATASETS_DIR / name, dataset.metadata)
    (root / ABSTRACT_OPS_DIR).mkdir(parents=True, exist_ok=True)
    for name, operator in ires.abstract_operators.items():
        _write_properties(root / ABSTRACT_OPS_DIR / name, operator.metadata)
    for operator in ires.library:
        op_dir = root / OPERATORS_DIR / operator.name
        op_dir.mkdir(parents=True, exist_ok=True)
        _write_properties(op_dir / DESCRIPTION_FILE, operator.metadata)
    for name, workflow in getattr(ires, "workflows", {}).items():
        wf_dir = root / WORKFLOWS_DIR / name
        wf_dir.mkdir(parents=True, exist_ok=True)
        lines = []
        for op_name, inputs in workflow.op_inputs.items():
            for ds in inputs:
                lines.append(f"{ds},{op_name},0")
        for op_name, outputs in workflow.op_outputs.items():
            for ds in outputs:
                lines.append(f"{op_name},{ds},0")
        lines.append(f"{workflow.target},$$target")
        (wf_dir / GRAPH_FILE).write_text("\n".join(lines) + "\n")


def _write_properties(path: Path, metadata) -> None:
    lines = [f"{key}={value}" for key, value in metadata.leaves()]
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
