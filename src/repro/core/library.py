"""The IReS operator library (D3.3 §2.1, Figure 1).

Materialized operators live here, indexed by highly selective meta-data
attributes (the algorithm name) so that abstract→materialized matching only
tree-matches a handful of candidates instead of scanning the whole library
(§2.2.3: "we further improve the matching procedure by indexing the IReS
library operators using a set of highly selective meta-data attributes").
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.operators import AbstractOperator, MaterializedOperator
from repro.obs.metrics import REGISTRY

#: The selective attribute used for the library index.
INDEX_ATTRIBUTE = "Constraints.OpSpecification.Algorithm.name"

_LOOKUPS = REGISTRY.counter(
    "ires_library_lookups_total",
    "Abstract-to-materialized match lookups against the operator library",
)
_CANDIDATES = REGISTRY.counter(
    "ires_library_candidates_total",
    "Candidate operators by match outcome (matched / engine_filtered / "
    "tree_rejected) and index prunes that skipped the tree-match entirely",
    labels=("outcome",),
)


@dataclass
class MatchStats:
    """What one ``find_materialized`` lookup saw — the planner attaches this
    to its per-operator expansion spans."""

    library_size: int = 0
    pool_size: int = 0  # candidates after the index lookup
    pruned_by_index: int = 0  # operators the index let us skip
    engine_filtered: int = 0  # pool members on unavailable engines
    tree_rejected: int = 0  # pool members failing the meta-data tree match
    matched: int = 0


class OperatorLibrary:
    """Container of materialized operators with an algorithm-name index."""

    def __init__(self, operators: Iterable[MaterializedOperator] = ()) -> None:
        self._by_name: dict[str, MaterializedOperator] = {}
        self._index: dict[str | None, list[str]] = defaultdict(list)
        for op in operators:
            self.add(op)

    def add(self, operator: MaterializedOperator) -> None:
        """Register a materialized operator (name must be unique)."""
        if operator.name in self._by_name:
            raise ValueError(f"operator {operator.name!r} already registered")
        self._by_name[operator.name] = operator
        self._index[operator.metadata.get(INDEX_ATTRIBUTE)].append(operator.name)

    def remove(self, name: str) -> None:
        """Drop an operator from the library and its index (no-op if absent)."""
        op = self._by_name.pop(name, None)
        if op is None:
            return
        key = op.metadata.get(INDEX_ATTRIBUTE)
        self._index[key] = [n for n in self._index[key] if n != name]

    def get(self, name: str) -> MaterializedOperator:
        """Look an operator up by name (KeyError if absent)."""
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self) -> Iterator[MaterializedOperator]:
        return iter(self._by_name.values())

    def candidates(self, abstract: AbstractOperator) -> list[MaterializedOperator]:
        """Index lookup: operators sharing the selective attribute value.

        A wildcard/absent algorithm name on the abstract side falls back to
        scanning everything (the index cannot prune).
        """
        key = abstract.metadata.get(INDEX_ATTRIBUTE)
        if key is None or key == "*":
            return list(self._by_name.values())
        return [self._by_name[n] for n in self._index.get(key, ())]

    def find_materialized(
        self,
        abstract: AbstractOperator,
        available_engines: set[str] | None = None,
        use_index: bool = True,
        stats: MatchStats | None = None,
    ) -> list[MaterializedOperator]:
        """``findMaterializedOperators(o)`` of Algorithm 1.

        Returns the implementations whose meta-data tree matches the abstract
        operator, optionally restricted to currently-available engines (the
        fault-tolerance path excludes unavailable ones during planning).
        ``use_index=False`` forces the full-library scan (used by the index
        ablation benchmark).  ``stats``, when given, is filled with the
        lookup's matched/pruned counts.
        """
        pool = self.candidates(abstract) if use_index else list(self._by_name.values())
        matches = []
        engine_filtered = tree_rejected = 0
        for op in pool:
            if available_engines is not None and op.engine not in available_engines:
                engine_filtered += 1
                continue
            if op.matches_abstract(abstract):
                matches.append(op)
            else:
                tree_rejected += 1
        pruned = len(self._by_name) - len(pool)
        _LOOKUPS.inc()
        _CANDIDATES.inc(len(matches), outcome="matched")
        if pruned:
            _CANDIDATES.inc(pruned, outcome="pruned_index")
        if engine_filtered:
            _CANDIDATES.inc(engine_filtered, outcome="engine_filtered")
        if tree_rejected:
            _CANDIDATES.inc(tree_rejected, outcome="tree_rejected")
        if stats is not None:
            stats.library_size = len(self._by_name)
            stats.pool_size = len(pool)
            stats.pruned_by_index = pruned
            stats.engine_filtered = engine_filtered
            stats.tree_rejected = tree_rejected
            stats.matched = len(matches)
        return matches
