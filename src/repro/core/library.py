"""The IReS operator library (D3.3 §2.1, Figure 1).

Materialized operators live here, indexed by highly selective meta-data
attributes (the algorithm name) so that abstract→materialized matching only
tree-matches a handful of candidates instead of scanning the whole library
(§2.2.3: "we further improve the matching procedure by indexing the IReS
library operators using a set of highly selective meta-data attributes").

The library carries a monotonically increasing ``epoch`` bumped by every
``add``/``remove``; plan caches key on it and ``listeners`` are notified so
dependent caches (the planner's plan cache, the library's own match memo)
invalidate exactly when the candidate pools can change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Iterator

from repro.core.metadata import WILDCARD
from repro.core.operators import AbstractOperator, MaterializedOperator
from repro.obs.metrics import REGISTRY

#: The selective attribute used for the library index.
INDEX_ATTRIBUTE = "Constraints.OpSpecification.Algorithm.name"

_LOOKUPS = REGISTRY.counter(
    "ires_library_lookups_total",
    "Abstract-to-materialized match lookups against the operator library",
)
_CANDIDATES = REGISTRY.counter(
    "ires_library_candidates_total",
    "Candidate operators by match outcome (matched / engine_filtered / "
    "tree_rejected) and index prunes that skipped the tree-match entirely",
    labels=("outcome",),
)


@dataclass
class MatchStats:
    """What one ``find_materialized`` lookup saw — the planner attaches this
    to its per-operator expansion spans."""

    library_size: int = 0
    pool_size: int = 0  # candidates after the index lookup
    pruned_by_index: int = 0  # operators the index let us skip
    engine_filtered: int = 0  # pool members on unavailable engines
    tree_rejected: int = 0  # pool members failing the meta-data tree match
    matched: int = 0


@dataclass
class MatchTotals:
    """Match counters accumulated across one planning pass.

    The planner performs one ``find_materialized`` per abstract operator;
    incrementing the registry counters per lookup is measurable on large
    workflows, so the hot path accumulates into plain ints here and flushes
    once per plan as a single ``inc(n)`` per outcome.
    """

    lookups: int = 0
    matched: int = 0
    pruned_by_index: int = 0
    engine_filtered: int = 0
    tree_rejected: int = 0

    def flush(self) -> None:
        """Emit the accumulated counts to the metrics registry and reset."""
        if self.lookups:
            _LOOKUPS.inc(self.lookups)
        if self.matched:
            _CANDIDATES.inc(self.matched, outcome="matched")
        if self.pruned_by_index:
            _CANDIDATES.inc(self.pruned_by_index, outcome="pruned_index")
        if self.engine_filtered:
            _CANDIDATES.inc(self.engine_filtered, outcome="engine_filtered")
        if self.tree_rejected:
            _CANDIDATES.inc(self.tree_rejected, outcome="tree_rejected")
        self.lookups = self.matched = self.pruned_by_index = 0
        self.engine_filtered = self.tree_rejected = 0


@dataclass(frozen=True)
class _MatchMemo:
    """Tree-match outcomes of one abstract signature over its index pool.

    Engine availability changes between replans, so it is *not* baked into
    the memo: each entry keeps ``(name, engine, tree_matched)`` and lookups
    re-apply the engine filter per call — O(pool) comparisons instead of
    O(pool · t) tree matches.  Cleared on every library epoch bump.
    """

    entries: tuple[tuple[str, str | None, bool], ...]
    pool_size: int


def _abstract_token(abstract: AbstractOperator) -> tuple[Hashable, ...]:
    """Hashable identity of an abstract operator's matching constraints."""
    node = abstract.metadata.node("Constraints")
    return tuple(node.leaves()) if node is not None else ()


class OperatorLibrary:
    """Container of materialized operators with an algorithm-name index."""

    def __init__(self, operators: Iterable[MaterializedOperator] = ()) -> None:
        self._by_name: dict[str, MaterializedOperator] = {}
        self._index: dict[str | None, list[str]] = {}
        #: change counter; every add/remove bumps it and notifies listeners
        self.epoch = 0
        #: called with the new epoch after every mutation (plan caches hook in)
        self.listeners: list[Callable[[int], None]] = []
        self._match_memo: dict[tuple[Hashable, ...], _MatchMemo] = {}
        for op in operators:
            self.add(op)

    def _changed(self) -> None:
        self.epoch += 1
        self._match_memo.clear()
        for listener in list(self.listeners):
            listener(self.epoch)

    def add(self, operator: MaterializedOperator) -> None:
        """Register a materialized operator (name must be unique)."""
        if operator.name in self._by_name:
            raise ValueError(f"operator {operator.name!r} already registered")
        self._by_name[operator.name] = operator
        key = operator.metadata.get(INDEX_ATTRIBUTE)
        self._index.setdefault(key, []).append(operator.name)
        self._changed()

    def remove(self, name: str) -> None:
        """Drop an operator from the library and its index (no-op if absent)."""
        op = self._by_name.pop(name, None)
        if op is None:
            return
        key = op.metadata.get(INDEX_ATTRIBUTE)
        bucket = self._index.get(key)
        if bucket is not None:
            remaining = [n for n in bucket if n != name]
            if remaining:
                self._index[key] = remaining
            else:
                del self._index[key]  # never leave empty buckets behind
        self._changed()

    def get(self, name: str) -> MaterializedOperator:
        """Look an operator up by name (KeyError if absent)."""
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self) -> Iterator[MaterializedOperator]:
        return iter(self._by_name.values())

    def candidates(self, abstract: AbstractOperator) -> list[MaterializedOperator]:
        """Index lookup: operators sharing the selective attribute value.

        A wildcard/absent algorithm name on the abstract side falls back to
        scanning everything (the index cannot prune).  Conversely, operators
        indexed under ``None`` (no algorithm name) or under the wildcard can
        still tree-match a concretely named abstract, so those two buckets
        are part of every pool — without them the index silently returned
        fewer matches than the full scan.
        """
        key = abstract.metadata.get(INDEX_ATTRIBUTE)
        if key is None or key == WILDCARD:
            return list(self._by_name.values())
        names = list(self._index.get(key, ()))
        names.extend(self._index.get(None, ()))
        names.extend(self._index.get(WILDCARD, ()))
        return [self._by_name[n] for n in names]

    def find_materialized(
        self,
        abstract: AbstractOperator,
        available_engines: set[str] | None = None,
        use_index: bool = True,
        stats: MatchStats | None = None,
        totals: MatchTotals | None = None,
    ) -> list[MaterializedOperator]:
        """``findMaterializedOperators(o)`` of Algorithm 1.

        Returns the implementations whose meta-data tree matches the abstract
        operator, optionally restricted to currently-available engines (the
        fault-tolerance path excludes unavailable ones during planning).
        ``use_index=False`` forces the full-library scan (used by the index
        ablation benchmark); the indexed path memoizes tree-match outcomes
        per abstract signature until the library's epoch changes, so replans
        and repeated plans skip the O(t) tree walks entirely.  ``stats``,
        when given, is filled with the lookup's matched/pruned counts;
        ``totals``, when given, receives the counter deltas instead of the
        registry (the planner flushes them once per pass).
        """
        matches: list[MaterializedOperator] = []
        engine_filtered = tree_rejected = 0
        if use_index:
            token = _abstract_token(abstract)
            memo = self._match_memo.get(token)
            if memo is None:
                pool = self.candidates(abstract)
                memo = _MatchMemo(
                    tuple((op.name, op.engine, op.matches_abstract(abstract))
                          for op in pool),
                    len(pool),
                )
                self._match_memo[token] = memo
            for name, engine, tree_matched in memo.entries:
                if available_engines is not None and engine not in available_engines:
                    engine_filtered += 1
                elif tree_matched:
                    matches.append(self._by_name[name])
                else:
                    tree_rejected += 1
            pool_size = memo.pool_size
        else:
            pool = list(self._by_name.values())
            for op in pool:
                if available_engines is not None and op.engine not in available_engines:
                    engine_filtered += 1
                    continue
                if op.matches_abstract(abstract):
                    matches.append(op)
                else:
                    tree_rejected += 1
            pool_size = len(pool)
        pruned = len(self._by_name) - pool_size
        if totals is not None:
            totals.lookups += 1
            totals.matched += len(matches)
            totals.pruned_by_index += pruned
            totals.engine_filtered += engine_filtered
            totals.tree_rejected += tree_rejected
        else:
            _LOOKUPS.inc()
            _CANDIDATES.inc(len(matches), outcome="matched")
            if pruned:
                _CANDIDATES.inc(pruned, outcome="pruned_index")
            if engine_filtered:
                _CANDIDATES.inc(engine_filtered, outcome="engine_filtered")
            if tree_rejected:
                _CANDIDATES.inc(tree_rejected, outcome="tree_rejected")
        if stats is not None:
            stats.library_size = len(self._by_name)
            stats.pool_size = pool_size
            stats.pruned_by_index = pruned
            stats.engine_filtered = engine_filtered
            stats.tree_rejected = tree_rejected
            stats.matched = len(matches)
        return matches
