"""The IReS operator library (D3.3 §2.1, Figure 1).

Materialized operators live here, indexed by highly selective meta-data
attributes (the algorithm name) so that abstract→materialized matching only
tree-matches a handful of candidates instead of scanning the whole library
(§2.2.3: "we further improve the matching procedure by indexing the IReS
library operators using a set of highly selective meta-data attributes").
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.core.operators import AbstractOperator, MaterializedOperator

#: The selective attribute used for the library index.
INDEX_ATTRIBUTE = "Constraints.OpSpecification.Algorithm.name"


class OperatorLibrary:
    """Container of materialized operators with an algorithm-name index."""

    def __init__(self, operators: Iterable[MaterializedOperator] = ()) -> None:
        self._by_name: dict[str, MaterializedOperator] = {}
        self._index: dict[str | None, list[str]] = defaultdict(list)
        for op in operators:
            self.add(op)

    def add(self, operator: MaterializedOperator) -> None:
        """Register a materialized operator (name must be unique)."""
        if operator.name in self._by_name:
            raise ValueError(f"operator {operator.name!r} already registered")
        self._by_name[operator.name] = operator
        self._index[operator.metadata.get(INDEX_ATTRIBUTE)].append(operator.name)

    def remove(self, name: str) -> None:
        """Drop an operator from the library and its index (no-op if absent)."""
        op = self._by_name.pop(name, None)
        if op is None:
            return
        key = op.metadata.get(INDEX_ATTRIBUTE)
        self._index[key] = [n for n in self._index[key] if n != name]

    def get(self, name: str) -> MaterializedOperator:
        """Look an operator up by name (KeyError if absent)."""
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self) -> Iterator[MaterializedOperator]:
        return iter(self._by_name.values())

    def candidates(self, abstract: AbstractOperator) -> list[MaterializedOperator]:
        """Index lookup: operators sharing the selective attribute value.

        A wildcard/absent algorithm name on the abstract side falls back to
        scanning everything (the index cannot prune).
        """
        key = abstract.metadata.get(INDEX_ATTRIBUTE)
        if key is None or key == "*":
            return list(self._by_name.values())
        return [self._by_name[n] for n in self._index.get(key, ())]

    def find_materialized(
        self,
        abstract: AbstractOperator,
        available_engines: set[str] | None = None,
        use_index: bool = True,
    ) -> list[MaterializedOperator]:
        """``findMaterializedOperators(o)`` of Algorithm 1.

        Returns the implementations whose meta-data tree matches the abstract
        operator, optionally restricted to currently-available engines (the
        fault-tolerance path excludes unavailable ones during planning).
        ``use_index=False`` forces the full-library scan (used by the index
        ablation benchmark).
        """
        pool = self.candidates(abstract) if use_index else list(self._by_name.values())
        matches = []
        for op in pool:
            if available_engines is not None and op.engine not in available_engines:
                continue
            if op.matches_abstract(abstract):
                matches.append(op)
        return matches
