"""Dataset descriptors — abstract and materialized (D3.3 §2.1)."""

from __future__ import annotations

from pathlib import Path

from repro.core.metadata import MetadataTree


class Dataset:
    """A dataset node of a workflow, described by a meta-data tree.

    A *materialized* dataset points at concrete bytes (``Execution.path``)
    on a concrete store (``Constraints.Engine.FS``); an *abstract* one is a
    placeholder wired into the workflow graph whose concrete format the
    planner decides.
    """

    def __init__(
        self,
        name: str,
        metadata: MetadataTree | dict | None = None,
        materialized: bool = False,
    ) -> None:
        self.name = name
        if metadata is None:
            metadata = MetadataTree()
        elif isinstance(metadata, dict):
            metadata = MetadataTree.from_properties(metadata)
        self.metadata = metadata
        self.materialized = materialized

    # -- convenience accessors over the predefined fields ----------------
    @property
    def store(self) -> str | None:
        """The datastore/filesystem holding the data (``Constraints.Engine.FS``)."""
        return self.metadata.get("Constraints.Engine.FS") or self.metadata.get(
            "Constraints.Engine"
        )

    @property
    def fmt(self) -> str | None:
        """Data format/type (``Constraints.type``), e.g. text, arff, sequence."""
        return self.metadata.get("Constraints.type")

    @property
    def path(self) -> str | None:
        """Concrete storage path of a materialized dataset."""
        return self.metadata.get("Execution.path")

    @property
    def size(self) -> float:
        """Dataset size in bytes (``Optimization.size``), 0 when unknown."""
        return self.metadata.get_float("Optimization.size", 0.0)

    @size.setter
    def size(self, value: float) -> None:
        """Setter for ``Optimization.size``."""
        self.metadata.set("Optimization.size", value)

    @property
    def count(self) -> float:
        """Input count (documents, edges, rows — ``Optimization.count``)."""
        value = self.metadata.get_float("Optimization.count")
        if value is None:
            value = self.metadata.get_float("Optimization.documents", 0.0)
        return value

    @count.setter
    def count(self, value: float) -> None:
        """Setter for ``Optimization.count``."""
        self.metadata.set("Optimization.count", value)

    def signature(self) -> tuple:
        """Hashable identity of this dataset's *format*: its constraint leaves.

        The planner's dpTable keeps one entry per distinct signature of each
        logical dataset ("the best execution plan for each different format
        of a dataset node").
        """
        constraints = self.metadata.node("Constraints")
        leaves = tuple(constraints.leaves()) if constraints is not None else ()
        return (self.name, leaves)

    def with_constraints(self, properties: dict) -> "Dataset":
        """Copy of this dataset with extra/overridden constraint leaves."""
        clone = Dataset(self.name, self.metadata.copy(), self.materialized)
        for key, value in properties.items():
            clone.metadata.set(key, value)
        return clone

    @classmethod
    def from_file(cls, name: str, path: str | Path) -> "Dataset":
        """Load a materialized dataset description file (asapLibrary/datasets)."""
        return cls(name, MetadataTree.from_file(path), materialized=True)

    def __repr__(self) -> str:
        kind = "materialized" if self.materialized else "abstract"
        return f"Dataset({self.name!r}, {kind}, store={self.store}, fmt={self.fmt})"
