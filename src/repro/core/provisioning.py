"""Elastic resource provisioning via NSGA-II (D3.3 §2.2.4 — new in v2).

For each operator the provisioner searches the (cores, memory) space for
Pareto-optimal trade-offs between the policy metric (execution time) and the
monetary cost ``cores · memory · t`` (§4.4), using the NSGA-II genetic
algorithm over the operator's estimation model.  The returned assignment
matches the paper's Figure 17 behaviour: execution times as low as the
max-resources strategy at a cost between the min- and max-static strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.engines.profiles import Resources
from repro.moea import NSGA2, Problem

#: estimator signature: seconds = f(cores, memory_gb)
TimeFunction = Callable[[int, float], float]


@dataclass
class ProvisioningResult:
    """Chosen resources plus the estimated time/cost and the front."""
    resources: Resources
    est_time: float
    est_cost: float
    front: list[tuple[int, float, float, float]]  # (cores, mem, time, cost)


class ResourceProvisioner:
    """NSGA-II search over resource-related parameters."""

    def __init__(
        self,
        max_cores: int = 32,
        max_memory_gb: float = 54.0,
        min_cores: int = 1,
        min_memory_gb: float = 1.0,
        population_size: int = 32,
        generations: int = 40,
        time_slack: float = 0.05,
        seed: int = 42,
    ) -> None:
        if max_cores < min_cores or max_memory_gb < min_memory_gb:
            raise ValueError("max resources must dominate min resources")
        self.max_cores = max_cores
        self.max_memory_gb = max_memory_gb
        self.min_cores = min_cores
        self.min_memory_gb = min_memory_gb
        self.population_size = population_size
        self.generations = generations
        #: among the Pareto front, accept any point within (1+slack) of the
        #: best time and take the cheapest — "just the right amount".
        self.time_slack = time_slack
        self.seed = seed

    def provision(self, time_fn: TimeFunction) -> ProvisioningResult:
        """Pick resources for one operator given its time model."""

        def evaluate(x: np.ndarray) -> tuple[float, float]:
            cores = int(x[0])
            memory = float(x[1])
            seconds = max(float(time_fn(cores, memory)), 0.0)
            return seconds, cores * memory * seconds

        problem = Problem(
            n_objectives=2,
            lower=[self.min_cores, self.min_memory_gb],
            upper=[self.max_cores, self.max_memory_gb],
            evaluate=evaluate,
            integer=[True, False],
        )
        front = NSGA2(
            problem,
            population_size=self.population_size,
            generations=self.generations,
            seed=self.seed,
        ).run()
        points = [
            (int(ind.x[0]), float(ind.x[1]), float(ind.objectives[0]),
             float(ind.objectives[1]))
            for ind in front
        ]
        best_time = min(p[2] for p in points)
        threshold = best_time * (1.0 + self.time_slack)
        eligible = [p for p in points if p[2] <= threshold]
        cores, memory, est_time, est_cost = min(eligible, key=lambda p: p[3])
        return ProvisioningResult(
            resources=Resources(cores=max(cores, 1), memory_gb=max(memory, 0.5)),
            est_time=est_time,
            est_cost=est_cost,
            front=sorted(points, key=lambda p: p[2]),
        )
