"""The IReS multi-engine workflow planner — Algorithm 1 of the paper.

A dynamic-programming optimizer over the abstract workflow DAG.  The
``dpTable`` keeps, for every intermediate dataset node, the best plan *per
distinct dataset format/location*, which is what enables hybrid multi-engine
plans (an entry left on engine A may lose locally but win globally once the
downstream operator runs on A).  Move/transform operators are synthesized
where consecutive operators disagree on formats or stores.

Entries form a parent-linked DAG instead of carrying full step lists; the
winning plan is assembled once at the end by a topological walk, which keeps
planning linear in plan size (the Figure 14/15 experiments run workflows of
up to 1000 nodes).

Worst-case complexity is ``O(op · m² · k)`` for ``op`` abstract operators,
``m`` matching implementations each and ``k`` inputs per operator.
"""

from __future__ import annotations

import time
from typing import Protocol, Sequence

from repro.core.dataset import Dataset
from repro.core.library import MatchStats, MatchTotals, OperatorLibrary
from repro.core.metadata import MetadataTree
from repro.core.operators import MaterializedOperator, MoveOperator
from repro.core.plancache import PlanCache
from repro.core.policy import OptimizationPolicy
from repro.core.provenance import (
    REASON_COST_INFEASIBLE,
    REASON_INPUT_UNPRODUCIBLE,
    REASON_NO_COMPATIBLE_INPUT,
    CandidateRecord,
    PlanProvenance,
)
from repro.core.workflow import AbstractWorkflow, MaterializedPlan, PlanStep
from repro.obs.context import current_run_id
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.tracing import NULL_TRACER, Span, Tracer

INFEASIBLE = float("inf")

_LOG = get_logger("planner")
_PLANS = REGISTRY.counter(
    "ires_planner_plans_total",
    "Planning passes by outcome (ok / infeasible)",
    labels=("status", "run_id"),
)
_PLAN_SECONDS = REGISTRY.histogram(
    "ires_planner_wall_seconds",
    "Wall-clock time of one planning pass",
)
_DP_ENTRIES = REGISTRY.gauge(
    "ires_planner_dp_entries",
    "dpTable entries (dataset x format/engine) of the last planning pass",
)
_EXPANSIONS = REGISTRY.counter(
    "ires_planner_expansions_total",
    "Abstract-operator DP expansions performed",
)
_PREFLIGHTS = REGISTRY.counter(
    "ires_planner_preflight_total",
    "Pre-flight lint gates by outcome (ok / failed)",
    labels=("status",),
)


class PlanningError(RuntimeError):
    """No feasible execution plan exists for the workflow."""


class CostEstimator(Protocol):
    """What the planner needs from the modeling layer (or ground truth)."""

    def operator_metrics(
        self, operator: MaterializedOperator, inputs: Sequence[Dataset]
    ) -> dict[str, float]:
        """Estimated metrics (execTime, cost, ...) of running the operator."""
        ...

    def move_metrics(
        self, dataset: Dataset, src_store: str | None, dst_store: str | None
    ) -> dict[str, float]:
        """Estimated metrics of moving/transforming a dataset between stores."""
        ...

    def output_size(
        self, operator: MaterializedOperator, inputs: Sequence[Dataset]
    ) -> float:
        """Estimated size (bytes) of the operator's output dataset."""
        ...

    def output_count(
        self, operator: MaterializedOperator, inputs: Sequence[Dataset]
    ) -> float:
        """Estimated cardinality (items) of the operator's output dataset."""
        ...


class MetadataCostEstimator:
    """Fallback estimator reading static costs from operator descriptions.

    Mirrors the deliverable's LineCount example where the description file
    carries ``Optimization.execTime=1.0`` / ``Optimization.cost=1.0``
    (a ``UserFunction`` model).  Move cost is proportional to data size.
    """

    def __init__(self, move_bandwidth: float = 100e6) -> None:
        self.move_bandwidth = move_bandwidth

    def operator_metrics(self, operator: MaterializedOperator,
                         inputs: Sequence[Dataset]) -> dict[str, float]:
        """Static ``Optimization.execTime``/``cost`` from the description."""
        return {
            "execTime": operator.metadata.get_float("Optimization.execTime", 1.0),
            "cost": operator.metadata.get_float("Optimization.cost", 1.0),
        }

    def move_metrics(self, dataset: Dataset, src_store: str | None,
                     dst_store: str | None) -> dict[str, float]:
        """Move time = bytes / bandwidth."""
        seconds = dataset.size / self.move_bandwidth
        return {"execTime": seconds, "cost": seconds}

    def output_size(self, operator: MaterializedOperator,
                    inputs: Sequence[Dataset]) -> float:
        """Output bytes default to the sum of input bytes."""
        return sum(d.size for d in inputs)

    def output_count(self, operator: MaterializedOperator,
                     inputs: Sequence[Dataset]) -> float:
        """Output cardinality defaults to the sum of input counts."""
        return sum(d.count for d in inputs)


class _Entry:
    """One dpTable record: a dataset in a concrete format plus how to get it.

    ``step`` is the final step producing the dataset (None for materialized
    sources); ``parents`` are the entries whose plans feed it.  The full plan
    is reconstructed by walking this DAG.
    """

    __slots__ = ("dataset", "cost", "step", "parents", "constraints")

    def __init__(
        self,
        dataset: Dataset,
        cost: float,
        step: PlanStep | None = None,
        parents: tuple["_Entry", ...] = (),
    ) -> None:
        self.dataset = dataset
        self.cost = cost
        self.step = step
        self.parents = parents
        # the _consider inner loop checks this node against every candidate's
        # input spec; resolving it once here keeps the per-candidate cost to
        # a single consistent_with walk
        self.constraints = dataset.metadata.node("Constraints")

    def collect_steps(self) -> list[PlanStep]:
        """Topologically ordered, deduplicated steps of this entry's plan."""
        seen: set[int] = set()
        ordered: list[PlanStep] = []

        def visit(entry: "_Entry") -> None:
            if id(entry) in seen:
                return
            seen.add(id(entry))
            for parent in entry.parents:
                visit(parent)
            if entry.step is not None:
                ordered.append(entry.step)

        visit(self)
        # a step may be shared by several entries; dedupe while keeping order
        unique: list[PlanStep] = []
        emitted: set[int] = set()
        for step in ordered:
            if id(step) not in emitted:
                emitted.add(id(step))
                unique.append(step)
        return unique


class Planner:
    """Dynamic-programming workflow planner (Algorithm 1)."""

    def __init__(
        self,
        library: OperatorLibrary,
        estimator: CostEstimator | None = None,
        policy: OptimizationPolicy | None = None,
        allow_moves: bool = True,
        use_index: bool = True,
        single_entry_dp: bool = False,
        tracer: Tracer | None = None,
        preflight: bool = False,
        record_provenance: bool = False,
        plan_cache: PlanCache | None = None,
    ) -> None:
        self.library = library
        self.estimator = estimator if estimator is not None else MetadataCostEstimator()
        self.policy = policy if policy is not None else OptimizationPolicy.min_exec_time()
        self.allow_moves = allow_moves
        self.use_index = use_index
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: opt-in pre-flight: run the match + dataflow lint passes before
        #: planning and raise one aggregated LintFailure listing every
        #: defect, instead of whatever mid-plan error the first one causes
        self.preflight = preflight
        #: ablation switch: keep only ONE best entry per dataset node instead
        #: of one per format/engine (loses hybrid plans; see DESIGN.md §5).
        self.single_entry_dp = single_entry_dp
        #: opt-in: capture every _consider comparison into a PlanProvenance
        #: (the ``ires explain`` data source); off by default — the NULL path
        #: must stay inside the obs overhead budget
        self.record_provenance = record_provenance
        #: provenance of the most recent plan() call (None until recorded)
        self.last_provenance: PlanProvenance | None = None
        #: memoized finished plans keyed on every input the DP depends on;
        #: None disables caching entirely
        self.plan_cache = plan_cache
        #: True when the most recent plan() was served from the cache
        self.last_plan_cached = False
        self._move_ops: dict[tuple, MoveOperator] = {}

    def _cache_token(self) -> tuple:
        """The planner knobs that change plan outcomes, for the cache key.

        The estimator enters by identity: its internal state (profiles,
        trained models) is keyed separately through the library/model epochs.
        """
        return (self.allow_moves, self.use_index, self.single_entry_dp,
                type(self.estimator).__name__, id(self.estimator))

    # -- public API ---------------------------------------------------------
    def plan(
        self,
        workflow: AbstractWorkflow,
        available_engines: set[str] | None = None,
        materialized_results: dict[str, Dataset] | None = None,
    ) -> MaterializedPlan:
        """Find the optimal materialized plan for an abstract workflow.

        ``available_engines`` excludes implementations on unavailable engines
        (used during fault-tolerant replanning, §2.3).  ``materialized_results``
        maps intermediate dataset names to already-computed results, which
        enter the dpTable at zero cost so replanning reuses them.

        With ``preflight=True`` the workflow is statically analyzed first
        and a :class:`~repro.analysis.diagnostics.LintFailure` aggregating
        every defect is raised before any DP work happens.
        """
        if self.preflight:
            self._preflight(workflow, available_engines)
        self.last_plan_cached = False
        cache = self.plan_cache
        key: tuple | None = None
        wall_start = time.perf_counter()
        # provenance-recording runs bypass the cache: a hit would leave
        # last_provenance stale (describing some earlier DP pass)
        if cache is not None and not self.record_provenance:
            key = cache.key(
                workflow,
                library_epoch=self.library.epoch,
                available_engines=available_engines,
                materialized_results=materialized_results,
                policy=self.policy,
                planner_token=self._cache_token(),
            )
            hit = cache.get(key)
            if hit is not None:
                self.last_plan_cached = True
                wall = time.perf_counter() - wall_start
                _PLANS.inc(status="ok", run_id=current_run_id() or "")
                _PLAN_SECONDS.observe(wall)
                _LOG.info("plan_ready", workflow=workflow.name,
                          steps=len(hit.steps), cost=round(hit.cost, 4),
                          wall_seconds=round(wall, 6), cached=True)
                return hit
        tracer = self.tracer
        try:
            with tracer.span(f"plan:{workflow.name}", category="planner",
                             workflow=workflow.name) as span:
                plan = self._plan_inner(
                    workflow, available_engines, materialized_results, tracer,
                    span,
                )
        except PlanningError:
            wall = time.perf_counter() - wall_start
            _PLANS.inc(status="infeasible", run_id=current_run_id() or "")
            _PLAN_SECONDS.observe(wall)
            _LOG.warning("plan_infeasible", workflow=workflow.name,
                         wall_seconds=round(wall, 6))
            raise
        wall = time.perf_counter() - wall_start
        _PLANS.inc(status="ok", run_id=current_run_id() or "")
        _PLAN_SECONDS.observe(wall)
        if tracer.enabled:
            span.set_attribute("steps", len(plan.steps))
            span.set_attribute("cost", plan.cost)
        _LOG.info("plan_ready", workflow=workflow.name,
                  steps=len(plan.steps), cost=round(plan.cost, 4),
                  wall_seconds=round(wall, 6), cached=False)
        if cache is not None and key is not None:
            cache.put(key, plan)
        return plan

    def _preflight(
        self,
        workflow: AbstractWorkflow,
        available_engines: set[str] | None,
    ) -> None:
        """Gate planning on the match + dataflow lint passes.

        Imports lazily: the analysis package sits above core in the import
        graph, so a module-level import here would be cyclic.
        """
        from repro.analysis.diagnostics import LintFailure
        from repro.analysis.lint import preflight_workflow

        collector = preflight_workflow(self.library, workflow,
                                       available_engines)
        if collector.has_errors:
            _PREFLIGHTS.inc(status="failed")
            _LOG.warning("preflight_failed", workflow=workflow.name,
                         errors=len(collector.errors()),
                         codes=",".join(collector.codes()))
            raise LintFailure(collector, context=f"workflow {workflow.name!r}")
        _PREFLIGHTS.inc(status="ok")

    def _plan_inner(
        self,
        workflow: AbstractWorkflow,
        available_engines: set[str] | None,
        materialized_results: dict[str, Dataset] | None,
        tracer: Tracer,
        span: Span,
    ) -> MaterializedPlan:
        workflow.validate()
        dp: dict[str, dict[tuple, _Entry]] = {}
        materialized_results = materialized_results or {}
        prov = PlanProvenance(workflow.name) if self.record_provenance else None
        if self.record_provenance:
            self.last_provenance = prov

        # Initialize dpTable with materialized inputs (lines 5-10).
        for name, dataset in workflow.datasets.items():
            if name in materialized_results:
                ds = materialized_results[name]
                dp[name] = {ds.signature(): _Entry(ds, 0.0)}
                if name == workflow.target:
                    # the replan's target was computed before the failure;
                    # nothing is left to plan (mirrors the materialized-source
                    # early return below)
                    return MaterializedPlan(workflow, [], 0.0)
            elif dataset.materialized:
                dp[name] = {dataset.signature(): _Entry(dataset, 0.0)}
                if name == workflow.target:
                    return MaterializedPlan(workflow, [], 0.0)

        # Process operators in DAG topological order (line 11 onwards).
        expansions = 0
        totals = MatchTotals()
        for abstract_op in workflow.topological_operators():
            in_names = workflow.op_inputs[abstract_op.name]
            out_names = workflow.op_outputs[abstract_op.name]
            if all(n in materialized_results for n in out_names):
                continue  # already computed before a failure; nothing to plan
            expansions += 1
            if not tracer.enabled:
                matches = self.library.find_materialized(
                    abstract_op, available_engines, use_index=self.use_index,
                    totals=totals,
                )
                for mat_op in matches:
                    self._consider(dp, workflow, abstract_op.name, mat_op,
                                   in_names, out_names, prov)
                continue
            stats = MatchStats()
            with tracer.span(f"expand:{abstract_op.name}", category="planner",
                             operator=abstract_op.name) as op_span:
                matches = self.library.find_materialized(
                    abstract_op, available_engines, use_index=self.use_index,
                    stats=stats, totals=totals,
                )
                for mat_op in matches:
                    self._consider(dp, workflow, abstract_op.name, mat_op,
                                   in_names, out_names, prov)
                op_span.set_attribute("candidates_matched", stats.matched)
                op_span.set_attribute("pruned_by_index", stats.pruned_by_index)
                op_span.set_attribute("engine_filtered", stats.engine_filtered)
                op_span.set_attribute("tree_rejected", stats.tree_rejected)
                op_span.set_attribute("dp_datasets", len(dp))
        totals.flush()
        _EXPANSIONS.inc(expansions)

        target_entries = dp.get(workflow.target)
        dp_entries = sum(len(entries) for entries in dp.values())
        _DP_ENTRIES.set(dp_entries)
        if tracer.enabled:
            span.set_attribute("expansions", expansions)
            span.set_attribute("dp_entries", dp_entries)
        if not target_entries:
            raise PlanningError(
                f"no feasible plan produces target {workflow.target!r} "
                f"(available engines: {sorted(available_engines) if available_engines else 'all'})"
            )
        best = min(target_entries.values(), key=lambda e: e.cost)
        plan = MaterializedPlan(workflow, best.collect_steps(), best.cost)
        if prov is not None:
            prov.finalize(plan)
        return plan

    # -- internals ---------------------------------------------------------
    def _consider(
        self,
        dp: dict[str, dict[tuple, _Entry]],
        workflow: AbstractWorkflow,
        abstract_name: str,
        mat_op: MaterializedOperator,
        in_names: list[str],
        out_names: list[str],
        prov: PlanProvenance | None = None,
    ) -> None:
        """Evaluate one materialized candidate (inner loop of Algorithm 1)."""
        input_cost = 0.0
        input_entries: list[_Entry] = []
        for i, in_name in enumerate(in_names):
            entries = dp.get(in_name)
            if not entries:
                if prov is not None:
                    prov.note(self._candidate(
                        abstract_name, mat_op, REASON_INPUT_UNPRODUCIBLE))
                return  # input not producible -> operator infeasible
            # one spec lookup per input, not one per dpTable entry
            spec = mat_op.input_spec(i)
            best: _Entry | None = None
            for entry in entries.values():
                if entry.constraints is None or spec.consistent_with(entry.constraints):
                    if best is None or entry.cost < best.cost:
                        best = entry
                elif self.allow_moves:
                    moved = self._move(entry, mat_op, spec)
                    if moved is not None and (best is None or moved.cost < best.cost):
                        best = moved
            if best is None:
                if prov is not None:
                    prov.note(self._candidate(
                        abstract_name, mat_op, REASON_NO_COMPATIBLE_INPUT))
                return
            input_cost += best.cost
            input_entries.append(best)

        input_datasets = [e.dataset for e in input_entries]
        metrics = self.estimator.operator_metrics(mat_op, input_datasets)
        operator_cost = self.policy.scalarize(metrics)
        if operator_cost == INFEASIBLE:
            if prov is not None:
                prov.note(self._candidate(
                    abstract_name, mat_op, REASON_COST_INFEASIBLE))
            return
        total_cost = input_cost + operator_cost
        if prov is not None:
            prov.note(CandidateRecord(
                abstract=abstract_name,
                operator=mat_op.name,
                algorithm=mat_op.algorithm,
                engine=mat_op.engine or "",
                feasible=True,
                operator_cost=operator_cost,
                total_cost=total_cost,
                predicted=metrics,
            ))

        outputs = []
        out_size = self.estimator.output_size(mat_op, input_datasets)
        out_count = self.estimator.output_count(mat_op, input_datasets)
        for i, out_name in enumerate(out_names):
            out_ds = mat_op.output_for(workflow.datasets[out_name], i)
            out_ds.size = out_size
            out_ds.count = out_count
            outputs.append(out_ds)
        step = PlanStep(
            operator=mat_op,
            inputs=tuple(input_datasets),
            outputs=tuple(outputs),
            estimated_cost=operator_cost,
            abstract_name=abstract_name,
            predicted=metrics,
        )
        parents = tuple(input_entries)
        for out_ds in outputs:
            slot = dp.setdefault(out_ds.name, {})
            key = ("__single__",) if self.single_entry_dp else out_ds.signature()
            current = slot.get(key)
            if current is None or total_cost < current.cost:
                slot[key] = _Entry(out_ds, total_cost, step, parents)

    def _candidate(self, abstract_name: str, mat_op: MaterializedOperator,
                   reason: str) -> CandidateRecord:
        """An infeasible-candidate provenance record."""
        return CandidateRecord(
            abstract=abstract_name,
            operator=mat_op.name,
            algorithm=mat_op.algorithm,
            engine=mat_op.engine or "",
            feasible=False,
            reason=reason,
        )

    def _move_operator(self, src_store: str | None, dst_store: str | None,
                       src_fmt: str | None,
                       dst_fmt: str | None) -> MoveOperator:
        key = (src_store, dst_store, src_fmt, dst_fmt)
        op = self._move_ops.get(key)
        if op is None:
            op = MoveOperator(src_store or "unknown", dst_store or "unknown",
                              src_fmt, dst_fmt)
            self._move_ops[key] = op
        return op

    def _move(self, entry: _Entry, mat_op: MaterializedOperator,
              spec: "MetadataTree") -> "_Entry | None":
        """``checkMove``/``moveCost`` of Algorithm 1: synthesize a transfer.

        Builds a move/transform step converting the dpTable entry's dataset
        to the format required by ``spec`` (the candidate's input spec, looked
        up once by the caller).  Returns None if the move is impossible
        (estimator returned infinity) or pointless (the input spec imposes no
        constraints to convert to).
        """
        if spec.is_leaf:
            return None  # nothing known to convert to; mismatch is structural
        src = entry.dataset
        src_store = src.store
        dst_store = spec.get("Engine.FS") or spec.get("Engine") or mat_op.engine
        metrics = self.estimator.move_metrics(src, src_store, dst_store)
        move_cost = self.policy.scalarize(metrics)
        if move_cost == INFEASIBLE:
            return None
        moved = Dataset(src.name, src.metadata.copy())
        for path, value in spec.leaves():
            moved.metadata.set(f"Constraints.{path}", value)
        moved_constraints = moved.metadata.node("Constraints")
        if moved_constraints is not None and not spec.consistent_with(moved_constraints):
            return None
        move_op = self._move_operator(src_store, dst_store, src.fmt, moved.fmt)
        step = PlanStep(
            operator=move_op,
            inputs=(src,),
            outputs=(moved,),
            estimated_cost=move_cost,
            predicted=metrics,
        )
        return _Entry(moved, entry.cost + move_cost, step, (entry,))
