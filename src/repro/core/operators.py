"""Operator descriptors: abstract, materialized and move/transform operators."""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.core.dataset import Dataset
from repro.core.metadata import MetadataTree


class Operator:
    """Base class holding the name/meta-data pair shared by all operators."""

    def __init__(self, name: str, metadata: MetadataTree | dict | None = None) -> None:
        self.name = name
        if metadata is None:
            metadata = MetadataTree()
        elif isinstance(metadata, dict):
            metadata = MetadataTree.from_properties(metadata)
        self.metadata = metadata

    @property
    def algorithm(self) -> str | None:
        """The selective matching attribute (``OpSpecification.Algorithm.name``)."""
        return self.metadata.get("Constraints.OpSpecification.Algorithm.name")

    @property
    def n_inputs(self) -> int:
        """Declared input arity (``Constraints.Input.number``)."""
        return self.metadata.get_int("Constraints.Input.number", 1)

    @property
    def n_outputs(self) -> int:
        """Declared output arity (``Constraints.Output.number``)."""
        return self.metadata.get_int("Constraints.Output.number", 1)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, algorithm={self.algorithm})"


class AbstractOperator(Operator):
    """An operator as referenced when composing a workflow.

    Defines *what* is computed (algorithm name, input/output arity, any extra
    constraints, possibly with ``*`` wildcards) but not *where/how*.
    """

    @classmethod
    def from_file(cls, name: str, path: str | Path) -> "AbstractOperator":
        """Parse an abstract-operator description file."""
        return cls(name, MetadataTree.from_file(path))


class MaterializedOperator(Operator):
    """A concrete operator implementation bound to an engine.

    Carries everything needed to run: the engine (``Constraints.Engine``),
    per-input/-output format specs (``Constraints.Input{i}``/``Output{i}``)
    and execution/optimization parameters.  ``impl`` optionally binds a
    Python callable actually computing the operator (see repro.analytics);
    IReS itself treats it as a black box.
    """

    def __init__(
        self,
        name: str,
        metadata: MetadataTree | dict | None = None,
        impl: Callable | None = None,
    ) -> None:
        super().__init__(name, metadata)
        self.impl = impl

    @property
    def engine(self) -> str | None:
        """The engine this implementation runs on (``Constraints.Engine``)."""
        return self.metadata.get("Constraints.Engine")

    def input_spec(self, i: int) -> MetadataTree:
        """Constraint subtree describing input ``i`` (may be empty)."""
        node = self.metadata.node(f"Constraints.Input{i}")
        return node if node is not None else MetadataTree()

    def output_spec(self, i: int) -> MetadataTree:
        """Constraint subtree describing output ``i`` (may be empty)."""
        node = self.metadata.node(f"Constraints.Output{i}")
        return node if node is not None else MetadataTree()

    def matches_abstract(self, abstract: AbstractOperator) -> bool:
        """Tree-match: does this implementation satisfy the abstract operator?

        All compulsory fields of the abstract description must be consistent
        with this operator's meta-data (D3.3 §2.1, Figure 2/3 example).
        """
        required = abstract.metadata.node("Constraints")
        if required is None:
            return True
        provided = self.metadata.node("Constraints")
        if provided is None:
            return False
        return required.matches(provided)

    def accepts_input(self, dataset: Dataset, i: int) -> bool:
        """Can ``dataset`` feed input ``i`` as-is (no move/transform)?

        The dataset's constraints and the input spec must agree on every
        shared field (engine/filesystem, type, ...).
        """
        spec = self.input_spec(i)
        ds_constraints = dataset.metadata.node("Constraints")
        if ds_constraints is None:
            return True
        return spec.consistent_with(ds_constraints)

    def output_for(self, abstract_output: Dataset, i: int = 0) -> Dataset:
        """Materialize the descriptor of output ``i`` for this implementation.

        The abstract output dataset is annotated with the operator's output
        spec (store, format), which is what downstream matching sees.
        """
        out = Dataset(abstract_output.name, abstract_output.metadata.copy())
        for path, value in self.output_spec(i).leaves():
            out.metadata.set(f"Constraints.{path}", value)
        out.materialized = False
        return out

    @classmethod
    def from_file(cls, name: str, path: str | Path,
                  impl: Callable | None = None) -> "MaterializedOperator":
        """Parse a materialized-operator description file."""
        return cls(name, MetadataTree.from_file(path), impl=impl)


class MoveOperator(MaterializedOperator):
    """A synthesized move/transform connecting two engines or formats.

    The planner inserts these automatically between consecutive operators
    whose output/input specs disagree (D3.3 §2.2.3, lines 22–25 of Alg. 1).
    """

    def __init__(self, src_store: str, dst_store: str, src_fmt: str | None = None,
                 dst_fmt: str | None = None) -> None:
        props = {
            "Constraints.OpSpecification.Algorithm.name": "move",
            "Constraints.Input.number": 1,
            "Constraints.Output.number": 1,
            "Constraints.Engine": "move",
        }
        if src_store:
            props["Constraints.Input0.Engine.FS"] = src_store
        if dst_store:
            props["Constraints.Output0.Engine.FS"] = dst_store
        if src_fmt:
            props["Constraints.Input0.type"] = src_fmt
        if dst_fmt:
            props["Constraints.Output0.type"] = dst_fmt
        name = f"move_{src_store}_to_{dst_store}"
        if src_fmt != dst_fmt and dst_fmt:
            name += f"_{src_fmt or 'any'}_to_{dst_fmt}"
        super().__init__(name, props)
        self.src_store = src_store
        self.dst_store = dst_store
        self.src_fmt = src_fmt
        self.dst_fmt = dst_fmt
