"""The IReS platform facade — the library's main entry point.

Wires together the architecture of Figure 1: the interface layer (meta-data
framework, parser), the optimizer layer (profiler/modeler, model refinement,
planner, resource provisioning) and the executor layer (enforcer, execution
monitor) over the multi-engine cloud.

Typical use::

    ires = IReS()
    ires.register_operator(MaterializedOperator("TF_IDF_spark", {...}))
    ires.register_abstract(AbstractOperator("tfidf", {...}))
    ires.register_dataset(Dataset("docs", {...}, materialized=True))
    wf = ires.workflow_from_graph("text", ["docs,tfidf,0", "tfidf,d1,0", "d1,$$target"])
    report = ires.execute(wf)
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.core.dataset import Dataset
from repro.core.estimators import ModelBackedEstimator, OracleEstimator
from repro.core.library import OperatorLibrary
from repro.core.modeler import Modeler
from repro.core.operators import AbstractOperator, MaterializedOperator
from repro.core.plancache import PlanCache
from repro.core.planner import Planner
from repro.core.policy import OptimizationPolicy
from repro.core.profiler import Profiler, ProfileSpec
from repro.engines.monitoring import MetricRecord
from repro.core.provisioning import (
    ProvisioningResult,
    ResourceProvisioner,
    TimeFunction,
)
from repro.core.refinement import ModelRefiner
from repro.core.workflow import AbstractWorkflow, MaterializedPlan
from repro.engines.faults import FaultInjector
from repro.engines.registry import MultiEngineCloud, build_default_cloud
from repro.execution.enforcer import ExecutionReport, IRES_REPLAN, WorkflowExecutor
from repro.execution.resilience import ResilienceManager
from repro.obs.accuracy import AccuracyLedger
from repro.obs.drift import DriftDetector
from repro.obs.tracing import Tracer

if TYPE_CHECKING:  # analysis sits above core in the import graph
    from repro.analysis.diagnostics import DiagnosticCollector
    from repro.execution.journal import RecoveredRun
    from repro.execution.resilience import RunControl


class IReS:
    """Intelligent Multi-Engine Resource Scheduler."""

    def __init__(
        self,
        cloud: MultiEngineCloud | None = None,
        policy: OptimizationPolicy | None = None,
        estimator: str = "oracle",
        refit_every: int = 1,
        strategy: str = IRES_REPLAN,
        resilience: "ResilienceManager | None" = None,
        tracer: Tracer | None = None,
        ledger: AccuracyLedger | None = None,
        drift: DriftDetector | None = None,
        record_provenance: bool = False,
        plan_cache: "PlanCache | bool | None" = True,
        journal_dir: "str | Path | None" = None,
    ) -> None:
        self.cloud = cloud if cloud is not None else build_default_cloud()
        #: platform-wide tracer — every layer's spans land here, stamped
        #: with the shared simulated clock
        self.tracer = (
            tracer if tracer is not None else Tracer(clock=self.cloud.clock)
        )
        self.policy = policy if policy is not None else OptimizationPolicy.min_exec_time()
        self.library = OperatorLibrary()
        self.abstract_operators: dict[str, AbstractOperator] = {}
        self.datasets: dict[str, Dataset] = {}
        #: named workflows registered via the library loader or the API
        self.workflows: dict[str, AbstractWorkflow] = {}
        self.profiler = Profiler(self.cloud)
        self.modeler = Modeler(self.cloud.collector, tracer=self.tracer)
        self.refiner = ModelRefiner(self.modeler, refit_every=refit_every)
        if estimator == "oracle":
            self.estimator = OracleEstimator(self.cloud)
        elif estimator == "models":
            self.estimator = ModelBackedEstimator(self.cloud, self.modeler)
        else:
            raise ValueError(f"estimator must be 'oracle' or 'models', got {estimator!r}")
        #: memoized plans for recurring submissions and warm replans; pass
        #: plan_cache=False (or a configured PlanCache instance) to override.
        #: Invalidation wiring: library add/remove bumps the library epoch;
        #: drift alarms bump the model epoch; model refits bump it only under
        #: estimator="models" (the oracle estimator ignores trained models,
        #: so refits cannot change its plans).
        if plan_cache is True:
            self.plan_cache: PlanCache | None = PlanCache()
        elif plan_cache is False or plan_cache is None:
            self.plan_cache = None
        else:
            self.plan_cache = plan_cache
        if self.plan_cache is not None:
            self.plan_cache.attach_library(self.library)
            if estimator == "models":
                self.plan_cache.attach_refiner(self.refiner)
            if drift is not None:
                self.plan_cache.attach_drift(drift)
        self.planner = Planner(self.library, self.estimator, self.policy,
                               tracer=self.tracer,
                               record_provenance=record_provenance,
                               plan_cache=self.plan_cache)
        self.provisioner = ResourceProvisioner()
        self.fault_injector = FaultInjector(self.cloud)
        #: prediction-accuracy ledger (disabled NULL ledger unless provided)
        self.ledger = ledger
        #: drift detector over the ledger; alarms drive early windowed
        #: refits through the platform's refiner
        self.drift = drift
        if drift is not None:
            drift.refiner = self.refiner
        from repro.execution.cache import ResultCache

        self.result_cache = ResultCache()
        self.executor = WorkflowExecutor(
            self.cloud, self.planner, fault_injector=self.fault_injector,
            strategy=strategy, resilience=resilience, tracer=self.tracer,
            ledger=ledger, drift=drift, journal_dir=journal_dir,
        )

    @property
    def resilience(self) -> "ResilienceManager | None":
        """The executor's resilience layer (retries + circuit breakers)."""
        return self.executor.resilience

    # -- interface layer -----------------------------------------------------
    def register_operator(self, operator: MaterializedOperator) -> MaterializedOperator:
        """Add a materialized operator to the library."""
        self.library.add(operator)
        return operator

    def register_abstract(self, operator: AbstractOperator) -> AbstractOperator:
        """Register an abstract operator for workflow composition."""
        self.abstract_operators[operator.name] = operator
        return operator

    def register_dataset(self, dataset: Dataset) -> Dataset:
        """Register a (materialized) dataset description."""
        self.datasets[dataset.name] = dataset
        return dataset

    def workflow_from_graph(
        self, name: str, graph_lines: Iterable[str]
    ) -> AbstractWorkflow:
        """Parse a §3.3-style graph file against the registered artefacts."""
        workflow = AbstractWorkflow.from_graph_lines(
            graph_lines, self.datasets, self.abstract_operators, name=name
        )
        self.workflows[name] = workflow
        return workflow

    # -- optimizer layer -------------------------------------------------------
    def profile_operator(self, spec: ProfileSpec, max_runs: int | None = None,
                         shuffle_seed: int | None = None) -> list[MetricRecord]:
        """Offline profiling: run the grid, then (re)train the model."""
        records = self.profiler.profile(spec, max_runs=max_runs,
                                        shuffle_seed=shuffle_seed)
        self.modeler.train(spec.algorithm, spec.engine)
        return records

    def plan(self, workflow: AbstractWorkflow) -> MaterializedPlan:
        """Materialize a workflow against the currently available engines."""
        return self.planner.plan(
            workflow, available_engines=self.cloud.available_engines() | {"move"}
        )

    def lint(self, workflow: str | None = None,
             root: "str | Path | None" = None) -> "DiagnosticCollector":
        """Statically analyze the platform's artefacts (see repro.analysis).

        Returns a :class:`~repro.analysis.diagnostics.DiagnosticCollector`;
        ``root`` optionally points at the on-disk library for file:line
        locations.  Imported lazily — analysis sits above core in the
        import graph.
        """
        from repro.analysis.lint import lint_platform

        return lint_platform(self, workflow=workflow, root=root)

    def provision(self, time_fn: "TimeFunction") -> ProvisioningResult:
        """NSGA-II resource provisioning over an operator's time model."""
        return self.provisioner.provision(time_fn)

    # -- executor layer ---------------------------------------------------------
    def execute(
        self,
        workflow: AbstractWorkflow,
        reuse: bool = False,
        control: "RunControl | None" = None,
        run_id: "str | None" = None,
        resume_from: "RecoveredRun | None" = None,
    ) -> ExecutionReport:
        """Plan and run a workflow with monitoring, refinement and replanning.

        ``reuse=True`` consults (and feeds) the platform's result cache so
        repeated or overlapping workflows skip already-materialized steps.
        ``control`` (a :class:`~repro.execution.resilience.RunControl`)
        enables cooperative cancellation and wall-clock deadlines;
        ``resume_from`` (a recovered journal) resumes a crashed run.
        """
        from repro.obs.context import bind_run_id

        report = self.executor.execute(
            workflow, cache=self.result_cache if reuse else None,
            control=control, run_id=run_id, resume_from=resume_from)
        # refinement trainings happen after the run but belong to it — keep
        # their spans/metrics correlated under the run's id
        with bind_run_id(report.run_id):
            for execution in report.executions:
                if execution.engine != "move" and execution.success:
                    records = self.cloud.collector.for_operator(
                        execution.step.operator.algorithm, execution.engine
                    )
                    if records:
                        self.refiner.observe(records[-1])
        return report

    def recover_run(self, run_id: str,
                    control: "RunControl | None" = None) -> ExecutionReport:
        """Resume a journaled run by id (requires ``journal_dir``).

        Replays ``<journal_dir>/<run_id>.jsonl``, seeds the completed steps
        as materialized results and runs only the unfinished remainder.  The
        workflow named by the journal must be registered on this platform.
        """
        from repro.execution.journal import journal_path, recover

        journal_dir = self.executor.journal_dir
        if journal_dir is None:
            raise ValueError("recovery needs a platform journal_dir")
        recovered = recover(journal_path(journal_dir, run_id))
        workflow = self.workflows.get(recovered.workflow)
        if workflow is None:
            raise KeyError(
                f"journal {run_id!r} names unknown workflow "
                f"{recovered.workflow!r}; available: {sorted(self.workflows)}"
            )
        return self.executor.resume(workflow, recovered, control=control)
