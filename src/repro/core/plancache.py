"""Plan cache — memoized DP planning for recurring and replanned workflows.

Every ``Planner.plan`` call recomputes the full dpTable, yet production
traffic is dominated by *recurring* workflows (identical submissions) and
*replans* (same workflow, fewer engines).  The cache keys a finished
:class:`~repro.core.workflow.MaterializedPlan` by a stable digest of every
input the DP actually depends on:

- the workflow structure (datasets with their full meta-data trees and
  materialized flags, operators with their meta-data, the wiring edges and
  the target),
- the ``materialized_results`` carried into a replan,
- the ``available_engines`` restriction (``None`` — unrestricted — is a
  distinct key from any concrete frozenset),
- the optimization policy (:meth:`OptimizationPolicy.cache_token`),
- the planner's own knobs (``allow_moves``/``use_index``/... plus estimator
  identity), passed in as an opaque ``planner_token``,
- the library ``epoch`` (bumped by every ``add``/``remove``) and the cache's
  ``model_epoch`` (bumped by model refits and drift alarms).

Because the epochs are part of the key, invalidation is cheap and exact: a
library or model change makes every old key unreachable.  The attached
listeners additionally *clear* the store so stale entries do not linger
until LRU pressure evicts them.

A hit returns the cached plan object itself (plans are treated as immutable
by the executor).  Note that its ``.workflow`` attribute references the
workflow instance of the *first* call; callers that rebuild structurally
identical workflows per submission still get a correct plan — the enforcer
walks the plan's steps, not the plan's workflow object.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Callable, Hashable

from repro.analysis.runtime_check import (
    LockLike,
    make_rlock,
    note_access,
    register_shared,
)
from repro.core.dataset import Dataset
from repro.core.workflow import AbstractWorkflow, MaterializedPlan
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY

if TYPE_CHECKING:  # imported for annotations only; avoids import cycles
    from repro.core.library import OperatorLibrary
    from repro.core.policy import OptimizationPolicy
    from repro.core.refinement import ModelRefiner
    from repro.obs.drift import DriftAlarm, DriftDetector

_LOG = get_logger("plancache")
_HITS = REGISTRY.counter(
    "ires_plancache_hits_total",
    "plan() calls served from the plan cache",
)
_MISSES = REGISTRY.counter(
    "ires_plancache_misses_total",
    "plan() calls that fell through to the DP",
)
_EVICTIONS = REGISTRY.counter(
    "ires_plancache_evictions_total",
    "Cached plans dropped by LRU capacity or TTL expiry",
    labels=("reason",),
)
_INVALIDATIONS = REGISTRY.counter(
    "ires_plancache_invalidations_total",
    "Cache invalidations by trigger (library_epoch / model_refit / "
    "drift_alarm / api / explicit)",
    labels=("reason",),
)

#: cache-key stand-in for "no engine restriction" (``available_engines=None``)
_ALL_ENGINES = "<all>"


def _metadata_token(dataset: Dataset) -> tuple[Hashable, ...]:
    """Hashable identity of one dataset: name, materialized flag, all leaves.

    The *full* leaf set (not just ``signature()``) because move costs read
    ``Optimization.size`` and execution paths live under ``Execution.*``.
    """
    return (dataset.name, dataset.materialized,
            tuple(dataset.metadata.leaves()))


def workflow_digest(workflow: AbstractWorkflow) -> str:
    """Stable hex digest of everything the DP reads from the workflow."""
    hasher = hashlib.sha256()
    hasher.update(repr((workflow.name, workflow.target)).encode())
    for name in sorted(workflow.datasets):
        hasher.update(repr(("D", _metadata_token(workflow.datasets[name]))).encode())
    for name in sorted(workflow.operators):
        op = workflow.operators[name]
        hasher.update(repr((
            "O", name, tuple(op.metadata.leaves()),
            tuple(workflow.op_inputs[name]), tuple(workflow.op_outputs[name]),
        )).encode())
    return hasher.hexdigest()


def _materialized_token(
    materialized_results: dict[str, Dataset] | None,
) -> tuple[Hashable, ...]:
    """Hashable identity of a replan's already-computed intermediates."""
    if not materialized_results:
        return ()
    return tuple(sorted(
        _metadata_token(ds) for ds in materialized_results.values()
    ))


class PlanCache:  # thread-shared
    """LRU + TTL cache of finished plans, invalidated by epoch bumps.

    Reachable from every service worker thread at once: lookups mutate LRU
    order and TTL expiry deletes entries, so the store, the hit/miss/eviction
    counters and the model epoch all live under one reentrant lock
    (reentrant because ``bump_model_epoch`` calls ``invalidate`` and both
    take it).
    """

    def __init__(
        self,
        capacity: int = 128,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock: LockLike = make_rlock("plancache")
        self._entries: "OrderedDict[tuple, tuple[float, MaterializedPlan]]" = (
            OrderedDict()  # guarded-by: _lock
        )
        #: bumped by model refits / drift alarms; part of every key
        self.model_epoch = 0  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock
        self.invalidations = 0  # guarded-by: _lock
        register_shared(self, "core:plancache", self._lock)

    # -- key construction ---------------------------------------------------
    def key(
        self,
        workflow: AbstractWorkflow,
        *,
        library_epoch: int,
        available_engines: set[str] | None = None,
        materialized_results: dict[str, Dataset] | None = None,
        policy: "OptimizationPolicy | None" = None,
        planner_token: tuple[Hashable, ...] = (),
    ) -> tuple:
        """The full cache key for one ``plan()`` call's inputs."""
        engines: Hashable = (
            _ALL_ENGINES if available_engines is None
            else frozenset(available_engines)
        )
        policy_token: Hashable = (
            policy.cache_token() if policy is not None else ()
        )
        return (
            workflow_digest(workflow),
            _materialized_token(materialized_results),
            engines,
            policy_token,
            planner_token,
            int(library_epoch),
            self._model_epoch_snapshot(),
        )

    def _model_epoch_snapshot(self) -> int:
        with self._lock:
            return self.model_epoch

    # -- store --------------------------------------------------------------
    def get(self, key: tuple) -> MaterializedPlan | None:
        """Look a plan up; counts a hit or a miss, expires TTL'd entries."""
        expired = False
        with self._lock:
            note_access(self, "get")
            record = self._entries.get(key)
            if record is not None and self.ttl_seconds is not None:
                inserted_at = record[0]
                if self._clock() - inserted_at > self.ttl_seconds:
                    del self._entries[key]
                    self.evictions += 1
                    expired = True
                    record = None
            if record is None:
                self.misses += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
        # metric increments happen outside the lock: the registry has its
        # own guard and keeping it out of this critical section keeps the
        # lock-order graph a tree (plancache -> metrics only)
        if expired:
            _EVICTIONS.inc(reason="ttl")
        if record is None:
            _MISSES.inc()
            return None
        _HITS.inc()
        return record[1]

    def put(self, key: tuple, plan: MaterializedPlan) -> None:
        """Store a freshly computed plan, evicting LRU entries over capacity."""
        evicted = 0
        with self._lock:
            note_access(self, "put")
            self._entries[key] = (self._clock(), plan)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        for _ in range(evicted):
            _EVICTIONS.inc(reason="capacity")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- invalidation -------------------------------------------------------
    def invalidate(self, reason: str = "explicit", *, force: bool = False) -> int:
        """Drop every cached plan; returns how many were dropped.

        The invalidation event is counted only when something was actually
        dropped (or ``force=True`` — the explicit API paths always count),
        so wiring the cache up before bulk-loading a library does not inflate
        the metric with no-op bumps.
        """
        with self._lock:
            note_access(self, "invalidate")
            dropped = len(self._entries)
            self._entries.clear()
            counted = bool(dropped or force)
            if counted:
                self.invalidations += 1
        if counted:
            _INVALIDATIONS.inc(reason=reason)
        if dropped:
            _LOG.info("plancache_invalidated", reason=reason, dropped=dropped)
        return dropped

    def bump_model_epoch(self, reason: str = "model_refit") -> None:
        """Model outputs changed: new epoch (new keys) + drop old entries."""
        with self._lock:
            note_access(self, "bump_model_epoch")
            self.model_epoch += 1
            self.invalidate(reason=reason)

    # -- hook wiring --------------------------------------------------------
    def attach_library(self, library: "OperatorLibrary") -> "PlanCache":
        """Invalidate on every library ``add``/``remove`` (epoch bump)."""
        library.listeners.append(self._on_library_change)
        return self

    def attach_refiner(self, refiner: "ModelRefiner") -> "PlanCache":
        """Bump the model epoch whenever a refit actually retrains a model."""
        refiner.listeners.append(self._on_refit)
        return self

    def attach_drift(self, drift: "DriftDetector") -> "PlanCache":
        """Bump the model epoch on drift alarms (profiles shifted underneath)."""
        drift.hooks.append(self._on_drift)
        return self

    def _on_library_change(self, epoch: int) -> None:
        self.invalidate(reason="library_epoch")

    def _on_refit(self, algorithm: str, engine: str) -> None:
        self.bump_model_epoch(reason="model_refit")

    def _on_drift(self, alarm: "DriftAlarm") -> None:
        self.bump_model_epoch(reason="drift_alarm")

    # -- introspection ------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Counters + configuration, one consistent snapshot under the lock
        (as served by ``GET /plancache``)."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "ttlSeconds": self.ttl_seconds,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "modelEpoch": self.model_epoch,
            }

    def __repr__(self) -> str:
        with self._lock:
            return (f"PlanCache(size={len(self._entries)}, hits={self.hits}, "
                    f"misses={self.misses})")
