"""Online model refinement (D3.3 §2.2.2 — new in IReS v2).

Every workflow execution feeds its monitored metrics back into the models,
so estimation accuracy improves while the platform operates and adapts to
infrastructure changes (the HDD→SSD experiment of Fig 16.b) and temporal
degradations.  The refiner batches retraining (every ``refit_every``
observations per pair) since CV over the zoo is the expensive part.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable

from repro.core.modeler import Modeler
from repro.engines.monitoring import MetricRecord


class ModelRefiner:
    """Streams execution records into the modeler, retraining periodically."""

    def __init__(self, modeler: Modeler, refit_every: int = 1) -> None:
        if refit_every < 1:
            raise ValueError("refit_every must be >= 1")
        self.modeler = modeler
        self.refit_every = refit_every
        self._pending: dict[tuple[str, str], int] = defaultdict(int)
        self.refits = 0
        #: called with (algorithm, engine) after every successful retrain —
        #: plan caches hook in here to bump their model epoch
        self.listeners: list[Callable[[str, str], None]] = []

    def _notify(self, algorithm: str, engine: str) -> None:
        for listener in list(self.listeners):
            listener(algorithm, engine)

    def observe(self, record: MetricRecord) -> bool:
        """Account one finished run; retrain its model when the batch is due.

        The record is assumed to already be in the shared collector (the
        engine put it there); this only drives the retraining cadence.
        Returns True when a retrain happened.
        """
        if not record.success:
            return False
        key = (record.algorithm, record.engine)
        self._pending[key] += 1
        if self._pending[key] >= self.refit_every:
            self._pending[key] = 0
            if self.modeler.train(*key) is not None:
                self.refits += 1
                self._notify(*key)
                return True
        return False

    def refit_now(self, algorithm: str, engine: str,
                  window: int | None = None) -> bool:
        """Immediately retrain one pair, bypassing the batching cadence.

        Drift alarms call this (``DriftDetector(refit=True)``): a ``window``
        restricts training to the newest records so the refit learns the
        post-drift behaviour instead of averaging it with stale history.
        Resets the pair's pending count.  Returns True when a model was fit.
        """
        self._pending[(algorithm, engine)] = 0
        if self.modeler.train(algorithm, engine, window=window) is not None:
            self.refits += 1
            self._notify(algorithm, engine)
            return True
        return False

    def flush(self) -> int:
        """Retrain every pair with pending observations; returns retrain count."""
        done = 0
        for key, pending in list(self._pending.items()):
            if pending > 0 and self.modeler.train(*key) is not None:
                done += 1
                self._notify(*key)
            self._pending[key] = 0
        self.refits += done
        return done
