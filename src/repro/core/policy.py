"""User-defined optimization policies.

The planner "is configured to optimize one metric or a function of multiple
performance metrics that the user is interested in" (D3.3 §2.2.3).  A policy
scalarizes a metrics dictionary — execution time, monetary cost, or any
custom measurable — into the single value Algorithm 1 minimizes.
"""

from __future__ import annotations

from typing import Callable, Mapping

#: Canonical metric names used across the platform.
EXEC_TIME = "execTime"
COST = "cost"


class OptimizationPolicy:
    """A (weighted) function over performance metrics, to be minimized.

    ``OptimizationPolicy()`` minimizes execution time;
    ``OptimizationPolicy({"execTime": 1, "cost": 0.5})`` minimizes a blend;
    ``OptimizationPolicy(function=f)`` applies an arbitrary callable over the
    metrics mapping.
    """

    def __init__(
        self,
        weights: Mapping[str, float] | None = None,
        function: Callable[[Mapping[str, float]], float] | None = None,
    ) -> None:
        if weights is not None and function is not None:
            raise ValueError("give either weights or a function, not both")
        if weights is None and function is None:
            weights = {EXEC_TIME: 1.0}
        self.weights = dict(weights) if weights is not None else None
        self.function = function

    @property
    def metrics(self) -> tuple[str, ...]:
        """The metric names the policy needs (empty for opaque functions)."""
        return tuple(self.weights) if self.weights is not None else ()

    def scalarize(self, metrics: Mapping[str, float]) -> float:
        """Reduce a metrics mapping to the scalar objective value."""
        if self.function is not None:
            return float(self.function(metrics))
        total = 0.0
        for name, weight in self.weights.items():
            if name not in metrics:
                raise KeyError(f"policy needs metric {name!r}, got {sorted(metrics)}")
            total += weight * float(metrics[name])
        return total

    def cache_token(self) -> tuple:
        """Hashable identity for plan-cache keys.

        Weighted policies are equal-by-value (two ``min_exec_time`` policies
        share cached plans); opaque functions are equal only by identity —
        there is no way to compare what they compute.
        """
        if self.function is not None:
            return ("function", id(self.function))
        return ("weights", tuple(sorted((self.weights or {}).items())))

    @classmethod
    def min_exec_time(cls) -> "OptimizationPolicy":
        """Policy minimizing execution time only."""
        return cls({EXEC_TIME: 1.0})

    @classmethod
    def min_cost(cls) -> "OptimizationPolicy":
        """Policy minimizing monetary cost only."""
        return cls({COST: 1.0})

    def __repr__(self) -> str:
        if self.function is not None:
            return "OptimizationPolicy(<custom function>)"
        return f"OptimizationPolicy({self.weights})"
