"""Adaptive (uncertainty-guided) profiling — the PANIC approach.

The paper's profiling mechanism "builds on prior work [PANIC: Modeling
Application Performance over Virtualized Resources]", whose key idea is to
*deploy the profiling budget where it is most informative* instead of
sweeping the whole grid.  :class:`AdaptiveProfiler` seeds a Gaussian-process
model with a few random runs and then repeatedly executes the grid point
with the highest posterior predictive uncertainty.
"""

from __future__ import annotations

import numpy as np

from repro.core.profiler import ProfileSpec, Profiler
from repro.engines.monitoring import MetricRecord
from repro.engines.profiles import Resources
from repro.engines.registry import MultiEngineCloud
from repro.models.gaussian_process import GaussianProcess


def _features(count: float, bytes_per_item: float, params: dict,
              resources: Resources, param_names: list[str]) -> list[float]:
    row = [count * bytes_per_item, count, float(resources.cores),
           resources.memory_gb]
    row.extend(float(params.get(name, 0.0)) for name in param_names)
    return row


class AdaptiveProfiler:
    """Budgeted profiling that samples where the GP is least certain."""

    def __init__(self, cloud: MultiEngineCloud, spec: ProfileSpec,
                 seed: int = 0) -> None:
        self.cloud = cloud
        self.spec = spec
        self.seed = seed
        self._profiler = Profiler(cloud)
        self._param_names = sorted(spec.params)

    def _grid_features(
        self, grid: list[tuple[float, dict[str, float], Resources]],
    ) -> np.ndarray:
        rows = [
            _features(count, self.spec.bytes_per_item, params, res,
                      self._param_names)
            for count, params, res in grid
        ]
        return np.log1p(np.abs(np.asarray(rows, dtype=float)))

    def run(self, budget: int, initial: int = 4) -> list[MetricRecord]:
        """Spend ``budget`` runs; returns the collected records.

        The first ``initial`` runs are random; each further run probes the
        remaining grid point with maximal GP predictive standard deviation.
        Failed runs (OOM) consume budget — failure is information too.
        """
        if budget < 1:
            raise ValueError("budget must be >= 1")
        rng = np.random.default_rng(self.seed)
        engine = self.cloud.engine(self.spec.engine)
        grid = self.spec.grid()
        feats = self._grid_features(grid)
        taken_X: list[np.ndarray] = []
        taken_y: list[float] = []
        records: list[MetricRecord] = []

        def execute(index: int) -> None:
            count, params, resources = grid[index]
            record = self._profiler.profile_point(
                engine, self.spec, count, params, resources)
            if record is not None:
                records.append(record)
                taken_X.append(feats[index])
                taken_y.append(np.log1p(record.exec_time))

        n_initial = min(initial, budget, len(grid))
        seeds = rng.choice(len(grid), size=n_initial, replace=False)
        for index in seeds:
            execute(int(index))
        remaining = [i for i in range(len(grid)) if i not in set(seeds.tolist())]

        spent = n_initial
        while spent < budget and remaining:
            if len(taken_y) >= 2:
                gp = GaussianProcess(noise=0.05).fit(
                    np.asarray(taken_X), np.asarray(taken_y))
                stds = gp.predict_std(feats[remaining])
                pick = remaining[int(np.argmax(stds))]
            else:
                pick = remaining[int(rng.integers(len(remaining)))]
            remaining.remove(pick)
            execute(pick)
            spent += 1
        return records

    def mean_relative_error(self, test_points: int = 50, seed: int = 1) -> float:
        """Evaluation utility: mean relative error of the platform's model
        (zoo + CV over the collected runs) against in-grid ground truth."""
        from repro.core.modeler import Modeler
        from repro.engines.errors import EngineError
        from repro.engines.profiles import Workload
        from repro.models import fast_model_zoo

        modeler = Modeler(self.cloud.collector, zoo=fast_model_zoo())
        model = modeler.train(self.spec.algorithm, self.spec.engine)
        if model is None:
            return float("nan")
        rng = np.random.default_rng(seed)
        engine = self.cloud.engine(self.spec.engine)
        grid = self.spec.grid()
        errors = []
        for _ in range(test_points):
            count, params, resources = grid[int(rng.integers(len(grid)))]
            try:
                truth = engine.true_seconds(
                    self.spec.algorithm,
                    Workload.of_count(count, self.spec.bytes_per_item, **params),
                    resources)
            except EngineError:
                continue
            features = {"input_size": count * self.spec.bytes_per_item,
                        "input_count": count,
                        "cores": float(resources.cores),
                        "memory_gb": resources.memory_gb}
            features.update(
                {f"param_{k}": float(v) for k, v in params.items()})
            predicted = model.estimate(features)
            errors.append(abs(predicted - truth) / max(truth, 1e-9))
        return float(np.mean(errors)) if errors else float("nan")
