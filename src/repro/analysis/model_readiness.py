"""Model-readiness pass: will the planner's estimates mean anything? (IRES03x)

When the platform plans from trained models (``estimator="models"``), an
operator pair with too few profiler samples silently falls back to default
cost estimates — plans "work" but optimize garbage.  This pass surfaces
that before planning.  With the oracle estimator the pass is a no-op:
ground-truth estimates need no training.
"""

from __future__ import annotations

from repro.analysis.diagnostics import DiagnosticCollector
from repro.analysis.passes import LintContext


class ModelReadinessPass:
    """Check profiler-sample and trained-model coverage per operator pair."""

    name = "models"

    def run(self, ctx: LintContext, out: DiagnosticCollector) -> None:
        """Warn on untrained/undersampled pairs the workflows would use."""
        modeler = ctx.modeler
        if modeler is None or not ctx.model_backed:
            return
        pairs: dict[tuple[str, str], str] = {}
        for name, abstract in sorted(ctx.scoped_abstract_operators().items()):
            for operator in ctx.library.candidates(abstract):
                if not operator.matches_abstract(abstract):
                    continue
                algorithm, engine = operator.algorithm, operator.engine
                if algorithm is None or engine is None:
                    continue  # missing keys are the schema pass's finding
                pairs.setdefault((algorithm, engine), operator.name)
        for (algorithm, engine), op_name in sorted(pairs.items()):
            artifact = f"operator:{op_name}"
            samples = modeler.sample_count(algorithm, engine)
            if samples < modeler.min_samples:
                out.report(
                    "IRES030",
                    f"{algorithm}@{engine} has {samples} profiler sample(s), "
                    f"fewer than the modeler's minimum {modeler.min_samples} "
                    "— planning falls back to default estimates",
                    artifact=artifact,
                    location=ctx.location("operator", op_name),
                    hint=f"profile the operator: "
                         f"ProfileSpec({algorithm!r}, {engine!r})",
                )
            elif modeler.get(algorithm, engine) is None:
                out.report(
                    "IRES031",
                    f"{algorithm}@{engine} has {samples} sample(s) but no "
                    "trained model yet",
                    artifact=artifact,
                    location=ctx.location("operator", op_name),
                    hint=f"call modeler.train({algorithm!r}, {engine!r})",
                )
