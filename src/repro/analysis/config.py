"""Config pass: resilience/provisioning sanity (IRES04x).

A breaker that can never close, a retry policy whose worst-case backoff
budget exceeds the step timeout, or a malformed retry policy all produce
runs that look configured-but-broken.  These are platform-level findings
(artifact ``platform:resilience``) rather than artefact-level ones.
"""

from __future__ import annotations

from repro.analysis.diagnostics import DiagnosticCollector
from repro.analysis.passes import LintContext

_ARTIFACT = "platform:resilience"


class ConfigPass:
    """Validate the resilience layer's configuration."""

    name = "config"

    def run(self, ctx: LintContext, out: DiagnosticCollector) -> None:
        """Check the retry policy, breaker thresholds and timeout budget."""
        manager = ctx.resilience
        if manager is None:
            return
        retry = manager.retry_policy
        if retry.max_attempts < 1:
            out.report(
                "IRES042",
                f"retry max_attempts={retry.max_attempts} — must be >= 1 "
                "(1 disables retrying)",
                artifact=_ARTIFACT, location="retry_policy.max_attempts",
                hint="use max_attempts=1 for the no-retry baseline",
            )
        if retry.base_backoff < 0 or retry.max_backoff < 0:
            out.report(
                "IRES042",
                f"negative backoff (base={retry.base_backoff}, "
                f"max={retry.max_backoff})",
                artifact=_ARTIFACT, location="retry_policy.base_backoff",
                hint="backoffs are simulated seconds and must be >= 0",
            )
        if retry.backoff_factor < 1:
            out.report(
                "IRES042",
                f"backoff_factor={retry.backoff_factor} shrinks backoffs "
                "across attempts — must be >= 1",
                artifact=_ARTIFACT, location="retry_policy.backoff_factor",
                hint="use backoff_factor=1 for constant backoff",
            )
        if manager.failure_threshold <= 0:
            out.report(
                "IRES040",
                f"breaker failure_threshold={manager.failure_threshold} "
                "opens the breaker before any failure",
                artifact=_ARTIFACT, location="failure_threshold",
                hint="thresholds must be positive (paper default: 3)",
            )
        if manager.recovery_timeout <= 0:
            out.report(
                "IRES043",
                f"breaker recovery_timeout={manager.recovery_timeout} "
                "re-probes sick engines immediately",
                artifact=_ARTIFACT, location="recovery_timeout",
                hint="give engines simulated seconds to recover",
            )
        self._check_budget(ctx, out)

    def _check_budget(self, ctx: LintContext,
                      out: DiagnosticCollector) -> None:
        """Worst-case retry backoff budget vs the absolute step timeout."""
        manager = ctx.resilience
        assert manager is not None
        retry = manager.retry_policy
        if manager.step_timeout is None or not retry.retries_enabled:
            return
        if retry.backoff_factor < 1 or retry.base_backoff < 0:
            return  # malformed policy already reported above
        budget = 0.0
        for attempt in range(1, retry.max_attempts):
            raw = min(retry.base_backoff * retry.backoff_factor ** (attempt - 1),
                      retry.max_backoff)
            budget += raw * (1.0 + max(retry.jitter, 0.0))
        if budget > manager.step_timeout:
            out.report(
                "IRES041",
                f"worst-case retry backoff budget {budget:.1f}s exceeds "
                f"step_timeout={manager.step_timeout:.1f}s — later retries "
                "can never run",
                artifact=_ARTIFACT, location="step_timeout",
                hint="raise step_timeout or trim max_attempts/max_backoff",
            )
