"""Dynamic concurrency checker: lock-order graph + TSan-lite access tracking.

The static passes of :mod:`repro.analysis.concurrency` catch what the AST
can prove; this module catches what only execution shows.  It is
deliberately dependency-free (stdlib only, no other ``repro`` imports) so
the deepest shared-state modules — :mod:`repro.obs.metrics`,
:mod:`repro.core.plancache`, :mod:`repro.execution.journal` — can import
it without creating a cycle through the ``repro.analysis`` package (whose
``__init__`` resolves its exports lazily for exactly this reason).

Three instruments, all owned by one :class:`ConcurrencyChecker`:

- **Instrumented locks** (:class:`InstrumentedLock` /
  :class:`InstrumentedRLock`): drop-in ``threading`` wrappers that record,
  per thread, the stack of held locks.  Every acquisition while another
  lock is held adds a *lock-order edge* ``held -> acquired`` to a global
  graph; a cycle in that graph is a potential deadlock and is recorded as
  a ``lock_order_cycle`` violation the first time it closes.
- **Hold-time tracking**: each release observes how long the lock was
  held; holds above ``hold_time_threshold`` seconds are recorded as
  outliers (a report entry, not a violation — long holds are a smell, not
  a bug).
- **TSan-lite shared-object tracking**: hardened classes register their
  shared instances (:func:`register_shared`) with the lock that guards
  them and call :func:`note_access` at mutation/exposition points.  An
  access without the guard held is recorded; at report time an object is
  a violation when it saw unguarded accesses *and* was touched by more
  than one thread (single-threaded unguarded use is fine by definition).

Activation: the module-level :data:`CHECKER` starts enabled when the
``IRES_CONCURRENCY_CHECK=1`` environment variable is set (how the CI job
and the conftest plugin switch the whole suite over); :func:`make_lock` /
:func:`make_rlock` return instrumented wrappers only while the checker is
enabled, plain ``threading`` primitives otherwise, so the production hot
path pays nothing.  Everything is also constructible standalone for
tests that *want* violations without poisoning the global checker.
"""

from __future__ import annotations

import json
import os
import threading
import time
import weakref
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Union

#: what :func:`make_lock` / :func:`make_rlock` may hand back
LockLike = Union["InstrumentedLock", "InstrumentedRLock",
                 threading.Lock, threading.RLock]


@dataclass
class Violation:
    """One recorded concurrency violation."""

    kind: str          #: ``lock_order_cycle`` or ``unguarded_access``
    detail: str
    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able view."""
        return {"kind": self.kind, "detail": self.detail, **self.data}


@dataclass
class _SharedObject:
    """Tracking record of one registered shared object."""

    name: str
    ref: "weakref.ref[Any] | None"
    guard: "InstrumentedLock | InstrumentedRLock | None"
    #: every thread ident that ever touched the object
    threads: set[int] = field(default_factory=set)
    #: (thread ident, op) pairs seen without the guard held
    unguarded: list[tuple[int, str]] = field(default_factory=list)
    accesses: int = 0


class _HeldStack(threading.local):
    """Per-thread stack of (lock, acquired_at) currently held."""

    def __init__(self) -> None:
        self.stack: list[tuple[Any, float]] = []


class ConcurrencyChecker:
    """Records lock acquisition order, hold times and shared-state access.

    All internal state is guarded by a *plain* ``threading.Lock`` — the
    checker must never route through its own instrumented primitives.
    """

    def __init__(self, enabled: bool = False,
                 hold_time_threshold: float = 0.25) -> None:
        self.enabled = enabled
        self.hold_time_threshold = hold_time_threshold
        self._lock = threading.Lock()
        self._held = _HeldStack()
        #: lock-order graph: lock name -> set of lock names acquired under it
        self._edges: dict[str, set[str]] = {}
        #: edge -> example (thread, holder stack) for reports
        self._edge_examples: dict[tuple[str, str], dict[str, Any]] = {}
        self._violations: list[Violation] = []
        self._reported_cycles: set[tuple[str, ...]] = set()
        self._hold_outliers: list[dict[str, Any]] = []
        self._shared: dict[int, _SharedObject] = {}
        self._max_hold: dict[str, float] = {}

    # -- lock events ---------------------------------------------------------
    def on_acquired(self, lock: "InstrumentedLock | InstrumentedRLock") -> None:
        """A lock was acquired (first acquisition only for RLocks)."""
        stack = self._held.stack
        if stack:
            with self._lock:
                for held, _ in stack:
                    if held.name == lock.name:
                        continue
                    self._edges.setdefault(held.name, set()).add(lock.name)
                    self._edge_examples.setdefault(
                        (held.name, lock.name),
                        {"thread": threading.current_thread().name,
                         "held": [h.name for h, _ in stack]})
                    self._check_cycle_locked(lock.name)
        stack.append((lock, time.perf_counter()))

    def on_released(self, lock: "InstrumentedLock | InstrumentedRLock") -> None:
        """A lock was fully released; record its hold time."""
        stack = self._held.stack
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][0] is lock:
                _, acquired_at = stack.pop(i)
                held_for = time.perf_counter() - acquired_at
                with self._lock:
                    self._max_hold[lock.name] = max(
                        self._max_hold.get(lock.name, 0.0), held_for)
                    if held_for > self.hold_time_threshold:
                        self._hold_outliers.append({
                            "lock": lock.name,
                            "heldSeconds": round(held_for, 6),
                            "thread": threading.current_thread().name,
                        })
                return

    def held_by_current_thread(self, lock: object) -> bool:
        """Whether the calling thread currently holds ``lock``."""
        return any(held is lock for held, _ in self._held.stack)

    def _check_cycle_locked(self, start: str) -> None:
        """DFS from ``start``; a path back to ``start`` is a cycle."""
        path: list[str] = [start]
        seen: set[str] = set()

        def visit(node: str) -> tuple[str, ...] | None:
            for nxt in sorted(self._edges.get(node, ())):
                if nxt == start:
                    return tuple(path)
                if nxt in seen:
                    continue
                seen.add(nxt)
                path.append(nxt)
                found = visit(nxt)
                if found is not None:
                    return found
                path.pop()
            return None

        cycle = visit(start)
        if cycle is None:
            return
        canonical = tuple(sorted(cycle))
        if canonical in self._reported_cycles:
            return
        self._reported_cycles.add(canonical)
        self._violations.append(Violation(
            kind="lock_order_cycle",
            detail=("inconsistent lock acquisition order: "
                    + " -> ".join(cycle + (cycle[0],))),
            data={"cycle": list(cycle)},
        ))

    # -- shared-object tracking ----------------------------------------------
    def register_shared(self, obj: object, name: str,
                        guard: object = None) -> None:
        """Track cross-thread access to ``obj``, expected under ``guard``."""
        if not self.enabled:
            return
        try:
            ref: "weakref.ref[Any] | None" = weakref.ref(obj)
        except TypeError:
            ref = None
        instrumented = guard if isinstance(
            guard, (InstrumentedLock, InstrumentedRLock)) else None
        with self._lock:
            self._shared[id(obj)] = _SharedObject(
                name=name, ref=ref, guard=instrumented)

    def note_access(self, obj: object, op: str = "write") -> None:
        """One access to a registered shared object from the calling thread."""
        if not self.enabled:
            return
        ident = threading.get_ident()
        with self._lock:
            record = self._shared.get(id(obj))
            if record is None:
                return
            record.accesses += 1
            record.threads.add(ident)
            guard = record.guard
            if guard is not None and not self.held_by_current_thread(guard):
                record.unguarded.append((ident, op))

    # -- reporting -----------------------------------------------------------
    def unguarded_shared_accesses(self) -> list[dict[str, Any]]:
        """Registered objects with unguarded access from >1 total threads."""
        out: list[dict[str, Any]] = []
        with self._lock:
            for record in self._shared.values():
                if record.unguarded and len(record.threads) > 1:
                    out.append({
                        "object": record.name,
                        "guard": record.guard.name if record.guard else None,
                        "threads": len(record.threads),
                        "unguardedAccesses": len(record.unguarded),
                        "ops": sorted({op for _, op in record.unguarded}),
                    })
        return sorted(out, key=lambda r: str(r["object"]))

    def violations(self) -> list[Violation]:
        """Lock-order cycles plus unguarded cross-thread accesses."""
        with self._lock:
            found = list(self._violations)
        found.extend(
            Violation(
                kind="unguarded_access",
                detail=(f"shared object {rec['object']!r} accessed by "
                        f"{rec['threads']} thread(s) with "
                        f"{rec['unguardedAccesses']} access(es) not holding "
                        f"its guard {rec['guard']!r}"),
                data=rec,
            )
            for rec in self.unguarded_shared_accesses()
        )
        return found

    def report(self) -> dict[str, Any]:
        """JSON-able checker state: graph, cycles, holds, shared objects."""
        violations = self.violations()
        with self._lock:
            edges = sorted(
                (a, b) for a, outs in self._edges.items() for b in outs)
            shared = [
                {
                    "object": rec.name,
                    "guard": rec.guard.name if rec.guard else None,
                    "threads": len(rec.threads),
                    "accesses": rec.accesses,
                    "unguardedAccesses": len(rec.unguarded),
                }
                for rec in sorted(self._shared.values(),
                                  key=lambda r: r.name)
            ]
            holds = {
                name: round(seconds, 6)
                for name, seconds in sorted(self._max_hold.items())
            }
            outliers = list(self._hold_outliers)
        return {
            "enabled": self.enabled,
            "lockOrderEdges": [{"from": a, "to": b} for a, b in edges],
            "violations": [v.to_dict() for v in violations],
            "holdTimeOutliers": outliers,
            "maxHoldSeconds": holds,
            "sharedObjects": shared,
        }

    def export_json(self, path: str | Path) -> Path:
        """Write :meth:`report` (the lock-order-graph artifact) to ``path``."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.report(), indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")
        return target

    def assert_clean(self) -> None:
        """Raise ``AssertionError`` listing every violation, if any."""
        found = self.violations()
        if found:
            lines = [f"  {v.kind}: {v.detail}" for v in found]
            raise AssertionError(
                "concurrency checker found "
                f"{len(found)} violation(s):\n" + "\n".join(lines))

    def reset(self) -> None:
        """Drop recorded state (graph, violations, shared objects)."""
        with self._lock:
            self._edges.clear()
            self._edge_examples.clear()
            self._violations.clear()
            self._reported_cycles.clear()
            self._hold_outliers.clear()
            self._shared.clear()
            self._max_hold.clear()


class InstrumentedLock:
    """A ``threading.Lock`` that reports acquisitions to a checker."""

    _factory = staticmethod(threading.Lock)
    reentrant = False

    def __init__(self, name: str,
                 checker: ConcurrencyChecker | None = None) -> None:
        self.name = name
        self.checker = checker if checker is not None else CHECKER
        self._inner = self._factory()
        self._depth = threading.local()

    def _enter_depth(self) -> int:
        depth = getattr(self._depth, "value", 0)
        self._depth.value = depth + 1
        return depth

    def _exit_depth(self) -> int:
        depth = getattr(self._depth, "value", 1) - 1
        self._depth.value = depth
        return depth

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire the underlying lock, recording the event on success."""
        acquired = self._inner.acquire(blocking, timeout)
        if acquired and self._enter_depth() == 0:
            self.checker.on_acquired(self)
        return acquired

    def release(self) -> None:
        """Release the underlying lock, recording hold time when fully out."""
        if self._exit_depth() == 0:
            self.checker.on_released(self)
        self._inner.release()

    def locked(self) -> bool:
        """Whether the underlying lock is currently held by anyone."""
        return self._inner.locked()

    def held_by_current_thread(self) -> bool:
        """Whether the calling thread holds this lock."""
        return self.checker.held_by_current_thread(self)

    def __enter__(self) -> "InstrumentedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        kind = "RLock" if self.reentrant else "Lock"
        return f"Instrumented{kind}({self.name!r})"


class InstrumentedRLock(InstrumentedLock):
    """A ``threading.RLock`` wrapper; only the outermost acquire/release
    hit the checker, so reentrancy adds no spurious graph edges."""

    _factory = staticmethod(threading.RLock)
    reentrant = True


#: the process-wide checker; enabled by ``IRES_CONCURRENCY_CHECK=1``
CHECKER = ConcurrencyChecker(
    enabled=os.environ.get("IRES_CONCURRENCY_CHECK", "") == "1")


def checking_enabled() -> bool:
    """Whether the process-wide checker is recording."""
    return CHECKER.enabled


def make_lock(name: str) -> "LockLike":
    """A mutex for ``name``: instrumented while checking, plain otherwise."""
    if CHECKER.enabled:
        return InstrumentedLock(name, CHECKER)
    return threading.Lock()


def make_rlock(name: str) -> "LockLike":
    """A reentrant mutex: instrumented while checking, plain otherwise."""
    if CHECKER.enabled:
        return InstrumentedRLock(name, CHECKER)
    return threading.RLock()


def register_shared(obj: object, name: str, guard: object = None) -> None:
    """Register ``obj`` with the process-wide checker (no-op when off)."""
    CHECKER.register_shared(obj, name, guard)


def note_access(obj: object, op: str = "write") -> None:
    """Record one access to ``obj`` on the process-wide checker (cheap
    single attribute check when checking is off)."""
    if CHECKER.enabled:
        CHECKER.note_access(obj, op)
