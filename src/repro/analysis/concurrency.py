"""Static concurrency-correctness passes (``ires analyze``).

Where :mod:`repro.analysis.lint` analyzes *user libraries*, this module
points the same :class:`~repro.analysis.diagnostics.Diagnostic` machinery
at Python source — primarily our own — and enforces the shared-state
annotation convention documented in DESIGN.md §13:

- ``# guarded-by: <lock>`` on a field assignment (same line or the line
  above) declares that every later write to ``self.<field>`` must happen
  inside ``with self.<lock>:``.
- ``# thread-shared`` on a ``class`` line (same line or the line above)
  declares instances are reached from multiple threads, so the class must
  own a lock and must not share mutable class-level attributes.

Two passes consume the per-module model built by :func:`build_model`:

- :class:`ThreadSafetyPass` — IRES050–055: guarded writes outside (or
  under the wrong) lock, mutable class attributes on thread-shared
  classes, statically inconsistent nested lock order, guards that name a
  lock the class never creates, and lock-less thread-shared classes.
- :class:`AsyncHygienePass` — IRES060–063: event-loop-blocking calls in
  ``async def``, coroutines called but never awaited,
  ``asyncio.to_thread`` targets that touch guarded state without its
  lock, and ``await`` while holding a lock.

Conventions the passes respect: writes inside ``__init__``/``__new__``
are construction, not sharing, and are skipped; methods whose name ends
in ``_locked`` assert the caller already holds the guard and are skipped
by IRES050/051 (but are prime IRES062 targets).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Protocol, Sequence

from repro.analysis.diagnostics import DiagnosticCollector

_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*(?:self\.)?([A-Za-z_]\w*)")
_SHARED_RE = re.compile(r"#\s*thread-shared\b")

#: method calls that mutate a container in place
_MUTATORS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend", "insert",
    "move_to_end", "pop", "popitem", "popleft", "remove", "rotate",
    "setdefault", "sort", "update",
})

#: constructor names whose result is a lock-like guard
_LOCK_CTORS = frozenset({
    "BoundedSemaphore", "Condition", "Lock", "RLock", "Semaphore",
    "make_lock", "make_rlock",
})

#: constructor names whose result is shared-mutable if hung on a class
_MUTABLE_CTORS = frozenset({
    "Counter", "OrderedDict", "defaultdict", "deque", "dict", "list", "set",
})

#: dotted call names that block the event loop inside ``async def``
_BLOCKING_CALLS = frozenset({
    "os.fdatasync", "os.fsync", "socket.create_connection",
    "subprocess.Popen", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.run", "time.sleep",
    "urllib.request.urlopen",
})

#: dotted prefixes that are blocking wholesale (sync HTTP clients)
_BLOCKING_PREFIXES = ("requests.", "http.client.")

#: methods exempt from IRES050/051 (construction or caller-holds-lock)
_EXEMPT_METHODS = frozenset({"__init__", "__new__", "__del__"})


@dataclass(frozen=True)
class GuardedField:
    """One ``# guarded-by:`` declaration."""

    name: str
    guard: str
    line: int


@dataclass
class ClassModel:
    """Concurrency-relevant facts about one class."""

    name: str
    line: int
    thread_shared: bool
    node: ast.ClassDef
    locks: dict[str, int] = field(default_factory=dict)
    guarded: dict[str, GuardedField] = field(default_factory=dict)
    methods: list[ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=list)
    mutable_init_fields: list[tuple[str, int]] = field(default_factory=list)

    def method(self, name: str) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """The method named ``name``, if the class defines one."""
        for fn in self.methods:
            if fn.name == name:
                return fn
        return None

    def async_method_names(self) -> set[str]:
        """Names of the class's ``async def`` methods."""
        return {fn.name for fn in self.methods
                if isinstance(fn, ast.AsyncFunctionDef)}


@dataclass
class ModuleModel:
    """Parsed source file plus the facts both passes need."""

    path: Path
    rel: str
    tree: ast.Module
    comments: dict[int, str]
    classes: list[ClassModel] = field(default_factory=list)
    functions: list[ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=list)

    def async_function_names(self) -> set[str]:
        """Names of module-level ``async def`` functions."""
        return {fn.name for fn in self.functions
                if isinstance(fn, ast.AsyncFunctionDef)}


@dataclass
class SourceContext:
    """Everything a source pass sees: the parsed modules under analysis."""

    modules: list[ModuleModel]
    root: Path

    def location(self, module: ModuleModel, line: int) -> str:
        """``relpath:line`` for reports."""
        return f"{module.rel}:{line}"


class SourcePass(Protocol):
    """A concurrency pass: reads a :class:`SourceContext`, reports findings."""

    name: str

    def run(self, ctx: SourceContext, out: DiagnosticCollector) -> None:
        """Analyze ``ctx`` and report into ``out``."""
        ...  # pragma: no cover - protocol


# -- model construction -------------------------------------------------------

def _comment_map(source: str) -> dict[int, str]:
    """Line number -> comment text (tokenize-accurate, string-safe)."""
    comments: dict[int, str] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments[tok.start[0]] = tok.string
    except tokenize.TokenError:  # torn source: best-effort map
        pass
    return comments


def _marked(comments: dict[int, str], line: int,
            pattern: re.Pattern[str],
            end_line: int | None = None) -> re.Match[str] | None:
    """Match ``pattern`` against the comment on the line above ``line`` or
    any line of the statement's span (multi-line assignments carry the
    annotation on an inner line)."""
    for candidate in range(line - 1, (end_line or line) + 1):
        text = comments.get(candidate)
        if text is not None:
            found = pattern.search(text)
            if found is not None:
                return found
    return None


def _self_attr(node: ast.expr) -> str | None:
    """``self.X`` -> ``X`` (one level only)."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _dotted(node: ast.expr) -> str | None:
    """Resolve ``a.b.c`` / ``name`` call targets to a dotted string."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def _is_lock_ctor(value: ast.expr) -> bool:
    """Whether ``value`` constructs a lock-like object."""
    if not isinstance(value, ast.Call):
        return False
    name = _dotted(value.func)
    if name is None:
        return False
    leaf = name.rsplit(".", 1)[-1]
    return leaf in _LOCK_CTORS or leaf.endswith(("Lock", "RLock"))


def _is_mutable_value(value: ast.expr) -> bool:
    """Whether ``value`` evaluates to a shared-mutable container."""
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                          ast.SetComp, ast.DictComp)):
        return True
    if isinstance(value, ast.Call):
        name = _dotted(value.func)
        if name is not None and name.rsplit(".", 1)[-1] in _MUTABLE_CTORS:
            return True
    return False


def _build_class(node: ast.ClassDef, comments: dict[int, str]) -> ClassModel:
    """Extract locks, guards and class-level state from one class."""
    model = ClassModel(
        name=node.name,
        line=node.lineno,
        thread_shared=_marked(comments, node.lineno, _SHARED_RE) is not None,
        node=node,
    )
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            model.methods.append(stmt)
    for fn in model.methods:
        for sub in ast.walk(fn):
            targets: list[ast.expr]
            value: ast.expr | None
            if isinstance(sub, ast.Assign):
                targets, value = sub.targets, sub.value
            elif isinstance(sub, ast.AnnAssign):
                targets, value = [sub.target], sub.value
            else:
                continue
            for target in targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                if value is not None and _is_lock_ctor(value):
                    model.locks.setdefault(attr, sub.lineno)
                guard = _marked(comments, sub.lineno, _GUARDED_RE,
                                sub.end_lineno)
                if guard is not None:
                    model.guarded.setdefault(attr, GuardedField(
                        name=attr, guard=guard.group(1), line=sub.lineno))
                if (fn.name == "__init__" and value is not None
                        and _is_mutable_value(value)):
                    model.mutable_init_fields.append((attr, sub.lineno))
    return model


def build_model(path: Path, rel: str, source: str) -> ModuleModel:
    """Parse one file into the shared per-module model."""
    tree = ast.parse(source, filename=str(path))
    model = ModuleModel(path=path, rel=rel, tree=tree,
                        comments=_comment_map(source))
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            model.functions.append(node)
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            model.classes.append(_build_class(node, model.comments))
    return model


# -- write / lock-scope walking ----------------------------------------------

@dataclass(frozen=True)
class Write:
    """One write to ``self.<field>`` and the locks held when it happens."""

    attr: str
    line: int
    kind: str
    held: frozenset[str]


@dataclass(frozen=True)
class AwaitUnderLock:
    """One ``await`` while at least one lock is held."""

    line: int
    locks: frozenset[str]


@dataclass
class MethodScan:
    """Result of walking one function body with lock-scope tracking."""

    writes: list[Write] = field(default_factory=list)
    edges: dict[tuple[str, str], int] = field(default_factory=dict)
    awaits_under_lock: list[AwaitUnderLock] = field(default_factory=list)


def _write_targets(node: ast.AST) -> Iterable[tuple[str, int, str]]:
    """Yield ``(field, line, kind)`` for writes expressed by ``node``."""
    targets: list[ast.expr] = []
    kind = "assignment"
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets, kind = list(node.targets), "delete"
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            attr = _self_attr(func.value)
            if attr is not None:
                yield attr, node.lineno, f".{func.attr}() call"
        return
    for target in targets:
        stack = [target]
        while stack:
            item = stack.pop()
            if isinstance(item, (ast.Tuple, ast.List)):
                stack.extend(item.elts)
                continue
            if isinstance(item, (ast.Subscript, ast.Starred)):
                stack.append(item.value)
                continue
            attr = _self_attr(item)
            if attr is not None:
                store_kind = kind
                if isinstance(target, ast.Subscript):
                    store_kind = "subscript store"
                yield attr, item.lineno, store_kind


def scan_body(fn: ast.FunctionDef | ast.AsyncFunctionDef,
              lock_names: set[str]) -> MethodScan:
    """Walk ``fn``'s body tracking which of ``lock_names`` are held."""
    scan = MethodScan()

    def visit(node: ast.AST, held: frozenset[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return  # nested callables run under their own discipline
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: set[str] = set()
            for item in node.items:
                lock = _self_attr(item.context_expr)
                if lock is not None and lock in lock_names:
                    acquired.add(lock)
                else:
                    visit(item.context_expr, held)
                    if item.optional_vars is not None:
                        visit(item.optional_vars, held)
            for holder in held:
                for lock in acquired:
                    if holder != lock:
                        scan.edges.setdefault((holder, lock), node.lineno)
            inner = held | acquired
            for stmt in node.body:
                visit(stmt, inner)
            return
        if isinstance(node, ast.Await) and held:
            scan.awaits_under_lock.append(
                AwaitUnderLock(line=node.lineno, locks=held))
        for attr, line, kind in _write_targets(node):
            scan.writes.append(Write(attr=attr, line=line, kind=kind,
                                     held=held))
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    for stmt in fn.body:
        visit(stmt, frozenset())
    return scan


def _find_cycle(edges: dict[tuple[str, str], int]) -> list[str] | None:
    """Shortest-first DFS for a cycle in the lock-order graph."""
    graph: dict[str, set[str]] = {}
    for (src, dst) in edges:
        graph.setdefault(src, set()).add(dst)
    for start in sorted(graph):
        path = [start]
        seen = {start}

        def visit(node: str) -> list[str] | None:
            for nxt in sorted(graph.get(node, ())):
                if nxt == start:
                    return list(path)
                if nxt in seen:
                    continue
                seen.add(nxt)
                path.append(nxt)
                found = visit(nxt)
                if found is not None:
                    return found
                path.pop()
            return None

        cycle = visit(start)
        if cycle is not None:
            return cycle
    return None


# -- passes -------------------------------------------------------------------

class ThreadSafetyPass:
    """IRES050–055: guarded-write and lock-discipline checks."""

    name = "thread-safety"

    def run(self, ctx: SourceContext, out: DiagnosticCollector) -> None:
        """Check every class in every module."""
        for module in ctx.modules:
            for cls in module.classes:
                self._check_class(ctx, module, cls, out)

    def _check_class(self, ctx: SourceContext, module: ModuleModel,
                     cls: ClassModel, out: DiagnosticCollector) -> None:
        artifact = f"class:{cls.name}"
        for guarded in cls.guarded.values():
            if guarded.guard not in cls.locks:
                out.report(
                    "IRES054",
                    f"field '{guarded.name}' is declared guarded-by "
                    f"'{guarded.guard}' but {cls.name} never creates that "
                    "lock",
                    artifact=artifact,
                    location=ctx.location(module, guarded.line),
                    hint=(f"assign self.{guarded.guard} = make_lock(...) in "
                          "__init__ or fix the annotation"),
                )
        if cls.thread_shared and not cls.locks:
            if cls.guarded or cls.mutable_init_fields:
                out.report(
                    "IRES055",
                    f"class '{cls.name}' is marked thread-shared but "
                    "defines no lock for its mutable state",
                    artifact=artifact,
                    location=ctx.location(module, cls.line),
                    hint=("create self._lock = make_lock(...) and guard "
                          "the mutable fields with it"),
                )
        if cls.thread_shared:
            for stmt in cls.node.body:
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    targets, value = [stmt.target], stmt.value
                if value is None or not _is_mutable_value(value):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        out.report(
                            "IRES052",
                            f"class attribute '{target.id}' on thread-shared "
                            f"class '{cls.name}' is a mutable container "
                            "shared by every instance and thread",
                            artifact=artifact,
                            location=ctx.location(module, stmt.lineno),
                            hint=("move it into __init__ as instance state "
                                  "and guard it with the class lock"),
                        )
        class_edges: dict[tuple[str, str], int] = {}
        lock_names = set(cls.locks)
        for fn in cls.methods:
            scan = scan_body(fn, lock_names)
            for edge, line in scan.edges.items():
                class_edges.setdefault(edge, line)
            if fn.name in _EXEMPT_METHODS or fn.name.endswith("_locked"):
                continue
            for write in scan.writes:
                guarded_field = cls.guarded.get(write.attr)
                if guarded_field is None:
                    continue
                if guarded_field.guard in write.held:
                    continue
                location = ctx.location(module, write.line)
                if write.held:
                    held = ", ".join(sorted(write.held))
                    out.report(
                        "IRES051",
                        f"field '{write.attr}' ({write.kind} in "
                        f"{cls.name}.{fn.name}) is written under "
                        f"'{held}' but is declared guarded-by "
                        f"'{guarded_field.guard}'",
                        artifact=artifact,
                        location=location,
                        hint=(f"acquire self.{guarded_field.guard} for this "
                              "write (or fix the guarded-by annotation)"),
                    )
                else:
                    out.report(
                        "IRES050",
                        f"field '{write.attr}' ({write.kind} in "
                        f"{cls.name}.{fn.name}) is written without holding "
                        f"its declared guard '{guarded_field.guard}'",
                        artifact=artifact,
                        location=location,
                        hint=(f"wrap the write in 'with "
                              f"self.{guarded_field.guard}:' or rename the "
                              "method with a _locked suffix if the caller "
                              "holds it"),
                    )
        cycle = _find_cycle(class_edges)
        if cycle is not None:
            ordering = " -> ".join(cycle + [cycle[0]])
            first_line = min(
                line for edge, line in class_edges.items()
                if edge[0] in cycle and edge[1] in cycle)
            out.report(
                "IRES053",
                f"methods of '{cls.name}' acquire locks in inconsistent "
                f"order: {ordering} (potential deadlock)",
                artifact=artifact,
                location=ctx.location(module, first_line),
                hint="pick one global acquisition order for these locks",
            )


class AsyncHygienePass:
    """IRES060–063: event-loop and coroutine hygiene checks."""

    name = "async-hygiene"

    def run(self, ctx: SourceContext, out: DiagnosticCollector) -> None:
        """Check every function in every module."""
        for module in ctx.modules:
            module_coroutines = module.async_function_names()
            for fn in module.functions:
                self._check_function(ctx, module, None, fn,
                                     module_coroutines, out)
            for cls in module.classes:
                for fn in cls.methods:
                    self._check_function(ctx, module, cls, fn,
                                         module_coroutines, out)

    def _check_function(self, ctx: SourceContext, module: ModuleModel,
                        cls: ClassModel | None,
                        fn: ast.FunctionDef | ast.AsyncFunctionDef,
                        module_coroutines: set[str],
                        out: DiagnosticCollector) -> None:
        owner = f"{cls.name}.{fn.name}" if cls is not None else fn.name
        artifact = f"function:{owner}"
        is_async = isinstance(fn, ast.AsyncFunctionDef)
        awaited_calls = {
            id(node.value) for node in ast.walk(fn)
            if isinstance(node, ast.Await)
        }
        class_coroutines = cls.async_method_names() if cls is not None else set()

        for node in ast.walk(fn):
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                call = node.value
                name: str | None = None
                if (isinstance(call.func, ast.Name)
                        and call.func.id in module_coroutines):
                    name = call.func.id
                else:
                    attr = _self_attr(call.func)
                    if attr is not None and attr in class_coroutines:
                        name = f"self.{attr}"
                if name is not None and id(call) not in awaited_calls:
                    out.report(
                        "IRES061",
                        f"coroutine '{name}' is called in {owner} but its "
                        "result is never awaited or scheduled",
                        artifact=artifact,
                        location=ctx.location(module, node.lineno),
                        hint=("await it, or hand it to "
                              "asyncio.create_task(...) to run concurrently"),
                    )
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted in ("asyncio.to_thread", "to_thread") and node.args:
                    self._check_to_thread(ctx, module, cls, owner, node, out)
                if is_async:
                    self._check_blocking(ctx, module, owner, node,
                                         awaited_calls, out)

        if is_async and cls is not None and cls.locks:
            scan = scan_body(fn, set(cls.locks))
            for entry in scan.awaits_under_lock:
                locks = ", ".join(sorted(entry.locks))
                out.report(
                    "IRES063",
                    f"'async def {owner}' awaits while holding lock "
                    f"'{locks}' — other coroutines on this loop will "
                    "block on it",
                    artifact=artifact,
                    location=ctx.location(module, entry.line),
                    hint=("copy what you need under the lock, release it, "
                          "then await"),
                )

    def _check_blocking(self, ctx: SourceContext, module: ModuleModel,
                        owner: str, node: ast.Call,
                        awaited_calls: set[int],
                        out: DiagnosticCollector) -> None:
        artifact = f"function:{owner}"
        dotted = _dotted(node.func)
        if dotted is not None and (
                dotted in _BLOCKING_CALLS
                or dotted.startswith(_BLOCKING_PREFIXES)):
            out.report(
                "IRES060",
                f"'{dotted}(...)' blocks the event loop inside "
                f"'async def {owner}'",
                artifact=artifact,
                location=ctx.location(module, node.lineno),
                hint=("use the asyncio equivalent (asyncio.sleep, "
                      "asyncio.to_thread, aiohttp) instead"),
            )
            return
        func = node.func
        if (isinstance(func, ast.Attribute) and func.attr == "acquire"
                and id(node) not in awaited_calls):
            target = _dotted(func.value) or "<lock>"
            out.report(
                "IRES060",
                f"'{target}.acquire()' is a synchronous lock acquisition "
                f"inside 'async def {owner}' — it can block the event loop",
                artifact=artifact,
                location=ctx.location(module, node.lineno),
                hint=("use asyncio.Lock with 'async with', or move the "
                      "critical section to asyncio.to_thread"),
            )

    def _check_to_thread(self, ctx: SourceContext, module: ModuleModel,
                         cls: ClassModel | None, owner: str,
                         node: ast.Call, out: DiagnosticCollector) -> None:
        if cls is None:
            return
        attr = _self_attr(node.args[0])
        if attr is None:
            return
        target = cls.method(attr)
        if target is None:
            return
        scan = scan_body(target, set(cls.locks))
        unguarded = [
            write for write in scan.writes
            if write.attr in cls.guarded
            and cls.guarded[write.attr].guard not in write.held
        ]
        if unguarded or (target.name.endswith("_locked") and cls.guarded):
            fields = ", ".join(sorted({w.attr for w in unguarded})) or \
                "caller-must-hold-lock state"
            out.report(
                "IRES062",
                f"asyncio.to_thread target 'self.{attr}' (from {owner}) "
                f"writes guarded state ({fields}) without holding its lock",
                artifact=f"function:{owner}",
                location=ctx.location(module, node.lineno),
                hint=("make the target take its own lock — to_thread runs "
                      "it on a worker thread concurrent with the loop"),
            )


# -- entry point --------------------------------------------------------------

def default_source_passes() -> list[SourcePass]:
    """The passes ``ires analyze`` runs, in order."""
    return [ThreadSafetyPass(), AsyncHygienePass()]


def _collect_files(paths: Sequence[Path | str]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated .py file list."""
    seen: set[Path] = set()
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            out.append(candidate)
    return out


def analyze_paths(paths: Sequence[Path | str], *,
                  root: Path | None = None,
                  passes: Sequence[SourcePass] | None = None,
                  ) -> DiagnosticCollector:
    """Run the concurrency passes over ``paths`` (files or directories)."""
    base = (root or Path.cwd()).resolve()
    out = DiagnosticCollector()
    modules: list[ModuleModel] = []
    for path in _collect_files(paths):
        try:
            rel = str(path.resolve().relative_to(base))
        except ValueError:
            rel = str(path)
        try:
            source = path.read_text(encoding="utf-8")
            modules.append(build_model(path, rel, source))
        except (OSError, SyntaxError, ValueError) as exc:
            out.report(
                "IRES001",
                f"source file cannot be parsed: {exc}",
                artifact=f"module:{rel}",
                location=rel,
            )
    ctx = SourceContext(modules=modules, root=base)
    for source_pass in (passes if passes is not None
                        else default_source_passes()):
        source_pass.run(ctx, out)
    return out
