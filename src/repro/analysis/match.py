"""Match pass: prove every abstract operator has an implementation (IRES01x).

For each abstract operator in scope, the pass replays the library's
abstract→materialized tree match.  When nothing matches it reports
``IRES010`` and — crucially — explains *why* each near-miss failed, naming
the first dotted key where the candidate's tree diverges from the abstract
requirements (the planner would otherwise just say "no plan found").
"""

from __future__ import annotations

from repro.analysis.diagnostics import DiagnosticCollector
from repro.analysis.passes import LintContext
from repro.core.library import INDEX_ATTRIBUTE
from repro.core.metadata import WILDCARD, MetadataTree
from repro.core.operators import MaterializedOperator

#: how many near-misses to explain per unmatched abstract operator
MAX_NEAR_MISSES = 5


def first_divergence(required: MetadataTree, provided: MetadataTree,
                     prefix: str = "Constraints") -> str | None:
    """The first dotted key where ``provided`` fails ``required.matches``.

    Mirrors :meth:`MetadataTree.matches` (sorted-label walk), but instead
    of a boolean returns ``"key: required X, found Y"`` for the earliest
    divergence — or ``None`` when the trees match.
    """
    if required.is_leaf:
        if required.value is None or required.value == WILDCARD:
            return None
        if provided.is_leaf:
            if provided.value == WILDCARD or provided.value == required.value:
                return None
            return (f"{prefix}: required {required.value!r}, "
                    f"found {provided.value!r}")
        return f"{prefix}: required leaf {required.value!r}, found a subtree"
    for label, child in required.children():
        path = f"{prefix}.{label}"
        other = provided.node(label)
        if other is None:
            return f"{path}: required but missing"
        divergence = first_divergence(child, other, path)
        if divergence is not None:
            return divergence
    return None


def explain_near_miss(abstract_metadata: MetadataTree,
                      candidate: MaterializedOperator) -> str:
    """Why one candidate failed the tree match, as ``name (reason)``."""
    required = abstract_metadata.node("Constraints")
    provided = candidate.metadata.node("Constraints")
    if required is None:
        return f"{candidate.name} (matches)"  # cannot happen for a miss
    if provided is None:
        return f"{candidate.name} (Constraints: required but missing)"
    reason = first_divergence(required, provided)
    return f"{candidate.name} ({reason or 'matches'})"


class MatchPass:
    """Abstract→materialized coverage, with near-miss explanations."""

    name = "match"

    def run(self, ctx: LintContext, out: DiagnosticCollector) -> None:
        """Check library coverage and engine deployment."""
        for name, abstract in sorted(ctx.scoped_abstract_operators().items()):
            self._check_abstract(ctx, name, out)
        if ctx.engines is not None:
            for operator in sorted(ctx.library, key=lambda op: op.name):
                engine = operator.engine
                if engine is not None and engine != "move" \
                        and engine not in ctx.engines:
                    out.report(
                        "IRES011",
                        f"engine {engine!r} is not deployed "
                        f"(deployed: {', '.join(sorted(ctx.engines))})",
                        artifact=f"operator:{operator.name}",
                        location=ctx.location("operator", operator.name,
                                              key="Constraints.Engine"),
                        hint="fix the engine name or deploy the engine",
                    )

    def _check_abstract(self, ctx: LintContext, name: str,
                        out: DiagnosticCollector) -> None:
        abstract = ctx.scoped_abstract_operators()[name]
        artifact = f"abstract:{name}"
        algorithm = abstract.metadata.get(INDEX_ATTRIBUTE)
        if algorithm == WILDCARD:
            out.report(
                "IRES012",
                f"{INDEX_ATTRIBUTE}=* cannot be pruned by the library index "
                f"(every lookup scans all {len(ctx.library)} operators)",
                artifact=artifact,
                location=ctx.location("abstract", name, key=INDEX_ATTRIBUTE),
                hint="name a concrete algorithm when composing workflows",
            )
        pool = ctx.library.candidates(abstract)
        matches = [op for op in pool if op.matches_abstract(abstract)]
        if matches:
            return
        if not pool:
            message = (f"no materialized operator implements {name!r}: "
                       f"no library operator advertises "
                       f"{INDEX_ATTRIBUTE}={algorithm!r}")
            hint = "register an implementation or fix the algorithm name"
        else:
            near = [explain_near_miss(abstract.metadata, op)
                    for op in pool[:MAX_NEAR_MISSES]]
            more = len(pool) - len(near)
            listing = "; ".join(near) + (f"; and {more} more" if more > 0 else "")
            message = (f"no materialized operator implements {name!r}; "
                       f"near-misses: {listing}")
            hint = "align the first divergent key on either side"
        out.report("IRES010", message, artifact=artifact,
                   location=ctx.location("abstract", name), hint=hint)
