"""Typed diagnostics for the IReS static analyzer.

Every defect the analyzer can report carries a **stable code** in the
``IRES0xx`` namespace (documented in DESIGN.md §8 — codes are append-only
and never reused), a severity, a source location (``file:line`` when the
artefact came from disk, a dotted meta-data key otherwise) and a fix hint.
:class:`DiagnosticCollector` aggregates instead of raising on the first
error, which is what turns today's mid-plan ``KeyError`` into one
actionable report; :class:`LintFailure` is the aggregated exception the
planner pre-flight raises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: severity sort order (most severe first)
_SEVERITY_RANK = {ERROR: 0, WARNING: 1, INFO: 2}

#: The stable diagnostic-code catalogue: code -> (default severity, title).
#: Codes are grouped by pass in blocks of ten and are never renumbered.
CODES: dict[str, tuple[str, str]] = {
    # schema pass (IRES00x)
    "IRES001": (ERROR, "description file cannot be parsed"),
    "IRES002": (ERROR, "required key missing"),
    "IRES003": (ERROR, "value has the wrong type"),
    "IRES004": (WARNING, "value outside its sane range"),
    "IRES005": (WARNING, "wildcard in a materialized description"),
    "IRES006": (WARNING, "duplicate dotted key (last occurrence wins)"),
    "IRES007": (INFO, "unknown top-level subtree"),
    "IRES008": (ERROR, "input/output spec index exceeds declared arity"),
    # match pass (IRES01x)
    "IRES010": (ERROR, "abstract operator has no materialized candidate"),
    "IRES011": (WARNING, "operator bound to an engine the platform does not deploy"),
    "IRES012": (INFO, "wildcard algorithm name defeats the library index"),
    # dataflow pass (IRES02x)
    "IRES020": (ERROR, "workflow graph contains a cycle"),
    "IRES021": (ERROR, "workflow target missing or unreachable"),
    "IRES022": (WARNING, "node contributes nothing to the target"),
    "IRES023": (ERROR, "edge arity disagrees with the declared input/output count"),
    "IRES024": (WARNING, "edge forces a move operator on every plan"),
    "IRES025": (ERROR, "malformed workflow graph"),
    # model-readiness pass (IRES03x)
    "IRES030": (WARNING, "too few profiler samples; planner falls back to defaults"),
    "IRES031": (INFO, "profiler samples exist but no model was trained"),
    # config pass (IRES04x)
    "IRES040": (ERROR, "circuit-breaker failure threshold is not positive"),
    "IRES041": (ERROR, "retry backoff budget exceeds the step timeout"),
    "IRES042": (ERROR, "retry policy is malformed"),
    "IRES043": (WARNING, "breaker recovery timeout is not positive"),
    # thread-safety pass (IRES05x) — `ires analyze`
    "IRES050": (ERROR, "guarded field written outside its declared lock"),
    "IRES051": (ERROR, "guarded field written under the wrong lock"),
    "IRES052": (ERROR, "mutable class attribute on a thread-shared class"),
    "IRES053": (ERROR, "inconsistent lock acquisition order across methods"),
    "IRES054": (ERROR, "guarded-by names a lock the class never defines"),
    "IRES055": (WARNING, "thread-shared class defines no lock"),
    # asyncio hygiene pass (IRES06x) — `ires analyze`
    "IRES060": (ERROR, "blocking call inside async def"),
    "IRES061": (ERROR, "coroutine called but never awaited"),
    "IRES062": (ERROR, "asyncio.to_thread target touches guarded state"),
    "IRES063": (WARNING, "await while holding a lock"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    ``artifact`` names what was analyzed (``operator:count_spark``,
    ``workflow:CountWorkflow``, ``platform:resilience``); ``location`` is a
    ``file:line`` pair when the artefact has an on-disk source, a dotted
    meta-data key path otherwise, or ``""`` when neither applies.
    """

    code: str
    severity: str
    message: str
    artifact: str = ""
    location: str = ""
    hint: str = ""

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if self.severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {self.severity!r}")

    @classmethod
    def make(cls, code: str, message: str, *, artifact: str = "",
             location: str = "", hint: str = "",
             severity: str | None = None) -> "Diagnostic":
        """Build a diagnostic with the catalogue's default severity."""
        if severity is None:
            if code not in CODES:
                raise ValueError(f"unknown diagnostic code {code!r}")
            severity = CODES[code][0]
        return cls(
            code=code,
            severity=severity,
            message=message,
            artifact=artifact,
            location=location,
            hint=hint,
        )

    def render(self) -> str:
        """One text line: ``location: severity CODE: message [artifact]``."""
        prefix = f"{self.location}: " if self.location else ""
        suffix = f" [{self.artifact}]" if self.artifact else ""
        return f"{prefix}{self.severity} {self.code}: {self.message}{suffix}"

    def to_json(self) -> dict[str, str]:
        """JSON-able dict with stable field names."""
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "artifact": self.artifact,
            "location": self.location,
            "hint": self.hint,
        }

    def _sort_key(self) -> tuple[int, str, str, str]:
        return (_SEVERITY_RANK[self.severity], self.artifact, self.location,
                self.code)


class DiagnosticCollector:
    """Aggregates diagnostics across passes instead of failing fast.

    Identical findings (same code, artifact, location and message) are
    deduplicated — the loader and the schema pass may both notice the same
    broken file.
    """

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self._diagnostics: list[Diagnostic] = []
        self._seen: set[tuple[str, str, str, str]] = set()
        self.extend(diagnostics)

    def add(self, diagnostic: Diagnostic) -> None:
        """Record one finding (duplicates are dropped)."""
        key = (diagnostic.code, diagnostic.artifact, diagnostic.location,
               diagnostic.message)
        if key in self._seen:
            return
        self._seen.add(key)
        self._diagnostics.append(diagnostic)

    def report(self, code: str, message: str, *, artifact: str = "",
               location: str = "", hint: str = "",
               severity: str | None = None) -> None:
        """Shorthand: build via :meth:`Diagnostic.make` and :meth:`add`."""
        self.add(Diagnostic.make(code, message, artifact=artifact,
                                 location=location, hint=hint,
                                 severity=severity))

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        """Record many findings."""
        for diagnostic in diagnostics:
            self.add(diagnostic)

    # -- access --------------------------------------------------------------
    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.sorted())

    def __len__(self) -> int:
        return len(self._diagnostics)

    def sorted(self) -> list[Diagnostic]:
        """Findings ordered most-severe first, then by artifact/location."""
        return sorted(self._diagnostics, key=lambda d: d._sort_key())

    def errors(self) -> list[Diagnostic]:
        """Only the error-severity findings."""
        return [d for d in self.sorted() if d.severity == ERROR]

    def warnings(self) -> list[Diagnostic]:
        """Only the warning-severity findings."""
        return [d for d in self.sorted() if d.severity == WARNING]

    @property
    def has_errors(self) -> bool:
        """True when at least one error was recorded."""
        return any(d.severity == ERROR for d in self._diagnostics)

    def failed(self, strict: bool = False) -> bool:
        """Gate verdict: errors always fail; ``strict`` also fails warnings."""
        if self.has_errors:
            return True
        return strict and bool(self.warnings())

    def counts(self) -> dict[str, int]:
        """``{severity: count}`` over every recorded finding."""
        out = {ERROR: 0, WARNING: 0, INFO: 0}
        for diagnostic in self._diagnostics:
            out[diagnostic.severity] += 1
        return out

    def codes(self) -> list[str]:
        """Sorted unique codes seen (golden tests key on this)."""
        return sorted({d.code for d in self._diagnostics})

    # -- rendering -----------------------------------------------------------
    def render_text(self, verbose_hints: bool = True) -> str:
        """Human-readable multi-line report ending in a summary line."""
        lines: list[str] = []
        for diagnostic in self.sorted():
            lines.append(diagnostic.render())
            if verbose_hints and diagnostic.hint:
                lines.append(f"  hint: {diagnostic.hint}")
        counts = self.counts()
        lines.append(
            f"{counts[ERROR]} error(s), {counts[WARNING]} warning(s), "
            f"{counts[INFO]} info"
        )
        return "\n".join(lines)

    def to_json(self, strict: bool = False) -> dict[str, object]:
        """JSON-able report: verdict, per-severity counts, findings."""
        return {
            "ok": not self.failed(strict),
            "strict": strict,
            "counts": self.counts(),
            "codes": self.codes(),
            "diagnostics": [d.to_json() for d in self.sorted()],
        }


class LintFailure(RuntimeError):
    """Aggregated pre-flight failure carrying every diagnostic at once.

    Raised by the planner's opt-in pre-flight instead of whatever mid-plan
    ``KeyError``/``PlanningError`` the first defect would have produced.
    """

    def __init__(self, collector: DiagnosticCollector,
                 context: str = "workflow") -> None:
        self.collector = collector
        errors = collector.errors()
        head = f"{context} failed lint with {len(errors)} error(s)"
        lines = [head] + [f"  {d.render()}" for d in collector.sorted()]
        super().__init__("\n".join(lines))

    @property
    def diagnostics(self) -> list[Diagnostic]:
        """Every finding, most severe first."""
        return self.collector.sorted()


@dataclass
class _CodeTableRow:
    """One row of the DESIGN.md code table (kept for doc generation)."""

    code: str
    severity: str
    title: str


def code_table() -> list[_CodeTableRow]:
    """The catalogue as rows, in code order — DESIGN.md §8 renders this."""
    return [
        _CodeTableRow(code, severity, title)
        for code, (severity, title) in sorted(CODES.items())
    ]
