"""Analyzer entry points: run the pass pipeline over a platform or library.

Three front doors, one engine:

- :func:`lint_library` — CLI path: tolerantly load an ``asapLibrary/``
  tree (collecting load-time diagnostics) and analyze it with file:line
  locations.
- :func:`lint_platform` — REST path: analyze a live in-memory platform.
- :func:`preflight_workflow` — planner path: the match + dataflow subset
  scoped to one workflow, cheap enough to run before every plan.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.analysis.config import ConfigPass
from repro.analysis.dataflow import DataflowPass
from repro.analysis.diagnostics import Diagnostic, DiagnosticCollector
from repro.analysis.match import MatchPass
from repro.analysis.model_readiness import ModelReadinessPass
from repro.analysis.passes import LintContext, Pass
from repro.analysis.schema import SchemaPass
from repro.core.library import OperatorLibrary
from repro.core.workflow import AbstractWorkflow

if TYPE_CHECKING:
    from repro.core.platform import IReS


def default_passes() -> list[Pass]:
    """The full pass pipeline, in execution order."""
    return [SchemaPass(), MatchPass(), DataflowPass(), ModelReadinessPass(),
            ConfigPass()]


def run_passes(
    ctx: LintContext,
    passes: Sequence[Pass] | None = None,
    preloaded: Sequence[Diagnostic] = (),
) -> DiagnosticCollector:
    """Run passes over a context, seeding load-time diagnostics first."""
    collector = DiagnosticCollector(preloaded)
    for analysis_pass in (passes if passes is not None else default_passes()):
        analysis_pass.run(ctx, collector)
    return collector


def lint_platform(
    ires: "IReS",
    workflow: str | None = None,
    root: Path | str | None = None,
    passes: Sequence[Pass] | None = None,
    preloaded: Sequence[Diagnostic] = (),
) -> DiagnosticCollector:
    """Analyze a live platform (optionally scoped to one workflow)."""
    ctx = LintContext.from_platform(ires, workflow=workflow, root=root)
    return run_passes(ctx, passes=passes, preloaded=preloaded)


def lint_library(
    root: Path | str,
    workflow: str | None = None,
    passes: Sequence[Pass] | None = None,
) -> "tuple[IReS, DiagnosticCollector]":
    """Load an on-disk library tolerantly, then analyze it.

    Returns the populated platform and the aggregated diagnostics; loading
    defects (unparseable files, unbuildable workflows) appear as
    diagnostics instead of exceptions.
    """
    from repro.core.libraryfs import load_asap_library
    from repro.core.platform import IReS

    ires = IReS()
    report = load_asap_library(root, ires)
    collector = lint_platform(ires, workflow=workflow, root=root,
                              passes=passes, preloaded=report.diagnostics)
    return ires, collector


def preflight_workflow(
    library: OperatorLibrary,
    workflow: AbstractWorkflow,
    available_engines: set[str] | None = None,
) -> DiagnosticCollector:
    """The planner's pre-flight: match + dataflow scoped to one workflow.

    Runs on a minimal context (no platform, no filesystem), so it is cheap
    enough to gate every planning pass when opted in.
    """
    ctx = LintContext(
        library=library,
        abstract_operators=dict(workflow.operators),
        datasets=dict(workflow.datasets),
        workflows={workflow.name: workflow},
        engines=frozenset(available_engines) if available_engines is not None
        else None,
    )
    return run_passes(ctx, passes=[MatchPass(), DataflowPass()])
