"""Dataflow pass: graph-shape defects in workflows (IRES02x).

Cycles, missing/unproducible targets, orphan nodes that contribute nothing
to the target, arity mismatches between graph edges and the operators'
declared input/output counts, and edges whose dataset can never feed any
implementation as-is (forcing a move operator onto every plan).
"""

from __future__ import annotations

from repro.analysis.diagnostics import DiagnosticCollector
from repro.analysis.passes import LintContext
from repro.core.metadata import MetadataError
from repro.core.workflow import AbstractWorkflow, WorkflowCycleError, WorkflowError


class DataflowPass:
    """Structural checks over every workflow in scope."""

    name = "dataflow"

    def run(self, ctx: LintContext, out: DiagnosticCollector) -> None:
        """Inspect each selected workflow independently."""
        for name, workflow in sorted(ctx.selected_workflows().items()):
            self._check_workflow(ctx, name, workflow, out)

    def _check_workflow(self, ctx: LintContext, name: str,
                        workflow: AbstractWorkflow,
                        out: DiagnosticCollector) -> None:
        artifact = f"workflow:{name}"
        location = ctx.location("workflow", name)
        try:
            list(workflow.topological_operators())
        except WorkflowCycleError as exc:
            out.report("IRES020", str(exc), artifact=artifact,
                       location=location,
                       hint="break the cycle; workflows must be DAGs")
            return  # downstream reachability checks assume a DAG
        except WorkflowError as exc:
            out.report("IRES025", str(exc), artifact=artifact,
                       location=location, hint="fix the graph file")
            return
        self._check_target(ctx, name, workflow, artifact, out)
        self._check_arity(ctx, name, workflow, artifact, out)
        self._check_forced_moves(ctx, name, workflow, artifact, out)

    # -- target + orphans ----------------------------------------------------
    def _check_target(self, ctx: LintContext, name: str,
                      workflow: AbstractWorkflow, artifact: str,
                      out: DiagnosticCollector) -> None:
        location = ctx.location("workflow", name)
        target = workflow.target
        if target is None or target not in workflow.datasets:
            out.report("IRES021",
                       f"workflow has no valid $$target (got {target!r})",
                       artifact=artifact, location=location,
                       hint="end the graph file with '<dataset>,$$target'")
            return
        if (target not in workflow.producer
                and not workflow.datasets[target].materialized):
            out.report("IRES021",
                       f"target {target!r} has no producer and is not "
                       "materialized — no plan can reach it",
                       artifact=artifact, location=location,
                       hint="connect an operator output to the target")
            return
        useful = self._ancestry(workflow, target)
        for ds_name in sorted(workflow.datasets):
            if ds_name not in useful:
                out.report("IRES022",
                           f"dataset {ds_name!r} contributes nothing to "
                           f"target {target!r}",
                           artifact=artifact, location=location,
                           hint="remove the dead node or rewire it")
        for op_name in sorted(workflow.operators):
            if op_name not in useful:
                out.report("IRES022",
                           f"operator {op_name!r} contributes nothing to "
                           f"target {target!r}",
                           artifact=artifact, location=location,
                           hint="remove the dead node or rewire it")

    @staticmethod
    def _ancestry(workflow: AbstractWorkflow, target: str) -> set[str]:
        """Every node on some path into ``target`` (inclusive)."""
        useful = {target}
        frontier = [target]
        while frontier:
            node = frontier.pop()
            parents: list[str] = []
            if node in workflow.datasets:
                producer = workflow.producer.get(node)
                if producer is not None:
                    parents = [producer]
            else:
                parents = list(workflow.op_inputs.get(node, ()))
            for parent in parents:
                if parent not in useful:
                    useful.add(parent)
                    frontier.append(parent)
        return useful

    # -- arity ---------------------------------------------------------------
    def _check_arity(self, ctx: LintContext, name: str,
                     workflow: AbstractWorkflow, artifact: str,
                     out: DiagnosticCollector) -> None:
        for op_name in sorted(workflow.operators):
            operator = workflow.operators[op_name]
            try:
                declared_in = operator.n_inputs
                declared_out = operator.n_outputs
            except MetadataError:
                continue  # non-numeric arity is the schema pass's finding
            wired_in = len(workflow.op_inputs.get(op_name, ()))
            wired_out = len(workflow.op_outputs.get(op_name, ()))
            if wired_in != declared_in:
                out.report(
                    "IRES023",
                    f"operator {op_name!r} is wired to {wired_in} input(s) "
                    f"but declares Constraints.Input.number={declared_in}",
                    artifact=artifact,
                    location=self._edge_location(ctx, name, workflow, op_name),
                    hint="add/remove graph edges or fix the declared arity",
                )
            if wired_out != declared_out:
                out.report(
                    "IRES023",
                    f"operator {op_name!r} produces {wired_out} output(s) "
                    f"but declares Constraints.Output.number={declared_out}",
                    artifact=artifact,
                    location=self._edge_location(ctx, name, workflow, op_name),
                    hint="add/remove graph edges or fix the declared arity",
                )

    @staticmethod
    def _edge_line(workflow: AbstractWorkflow, op_name: str) -> int | None:
        """Graph-file line of the first edge touching ``op_name``."""
        lines = [line for (src, dst), line in workflow.edge_lines.items()
                 if op_name in (src, dst)]
        return min(lines) if lines else None

    def _edge_location(self, ctx: LintContext, name: str,
                       workflow: AbstractWorkflow, op_name: str) -> str:
        return ctx.location("workflow", name,
                            line=self._edge_line(workflow, op_name))

    # -- forced moves --------------------------------------------------------
    def _check_forced_moves(self, ctx: LintContext, name: str,
                            workflow: AbstractWorkflow, artifact: str,
                            out: DiagnosticCollector) -> None:
        """Materialized inputs no implementation accepts as-is (IRES024).

        Only source datasets with concrete constraints are judged —
        intermediate datasets take whatever format the chosen upstream
        implementation emits, which is the planner's call, not a defect.
        """
        for op_name in sorted(workflow.operators):
            abstract = workflow.operators[op_name]
            matches = [op for op in ctx.library.candidates(abstract)
                       if op.matches_abstract(abstract)]
            if not matches:
                continue  # unmatchable operators are the match pass's finding
            for i, ds_name in enumerate(workflow.op_inputs.get(op_name, ())):
                dataset = workflow.datasets.get(ds_name)
                if dataset is None or not dataset.materialized:
                    continue
                if dataset.metadata.node("Constraints") is None:
                    continue
                if any(op.accepts_input(dataset, i) for op in matches):
                    continue
                line = workflow.edge_lines.get((ds_name, op_name))
                out.report(
                    "IRES024",
                    f"no implementation of {op_name!r} accepts dataset "
                    f"{ds_name!r} as-is on input {i} — every plan will pay "
                    "a move/transform",
                    artifact=artifact,
                    location=ctx.location("workflow", name, line=line),
                    hint="co-locate the dataset or add a native-format "
                         "implementation",
                )
