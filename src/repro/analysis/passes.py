"""The analyzer's pass protocol and shared lint context.

A *pass* is one focused inspection over the artifact layer (schema, match,
dataflow, model-readiness, config).  Passes never raise on bad artifacts —
they report into a :class:`~repro.analysis.diagnostics.DiagnosticCollector`
— and they share a :class:`LintContext` describing what to analyze and
where it came from, so findings can point at ``file:line`` when the
artefact has an on-disk source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.analysis.diagnostics import DiagnosticCollector
from repro.core.dataset import Dataset
from repro.core.library import OperatorLibrary
from repro.core.libraryfs import (
    ABSTRACT_OPS_DIR,
    DATASETS_DIR,
    DESCRIPTION_FILE,
    GRAPH_FILE,
    OPERATORS_DIR,
    WORKFLOWS_DIR,
)
from repro.core.operators import AbstractOperator
from repro.core.workflow import AbstractWorkflow

if TYPE_CHECKING:  # avoid a hard import cycle with the platform facade
    from repro.core.modeler import Modeler
    from repro.core.platform import IReS
    from repro.execution.resilience import ResilienceManager


#: artefact kind -> relative path fragments under the library root
_KIND_PATHS = {
    "dataset": (DATASETS_DIR, None),
    "operator": (OPERATORS_DIR, DESCRIPTION_FILE),
    "abstract": (ABSTRACT_OPS_DIR, None),
    "workflow": (WORKFLOWS_DIR, GRAPH_FILE),
}


@dataclass
class LintContext:
    """Everything a pass may inspect, decoupled from the platform facade.

    The planner pre-flight builds a minimal context (library + one
    workflow); ``ires lint`` builds a full one via :meth:`from_platform`
    with ``root`` pointing at the on-disk library for file:line locations.
    """

    library: OperatorLibrary
    abstract_operators: dict[str, AbstractOperator] = field(default_factory=dict)
    datasets: dict[str, Dataset] = field(default_factory=dict)
    workflows: dict[str, AbstractWorkflow] = field(default_factory=dict)
    #: names of engines the platform deploys; None = unknown (skip checks)
    engines: frozenset[str] | None = None
    #: the modeler, for the model-readiness pass (None = skip)
    modeler: "Modeler | None" = None
    #: True when planning estimates actually depend on trained models
    model_backed: bool = False
    #: the resilience manager, for the config pass (None = skip)
    resilience: "ResilienceManager | None" = None
    #: on-disk library root, for file:line locations (None = in-memory)
    root: Path | None = None
    #: restrict workflow-scoped passes to this workflow name (None = all)
    workflow_filter: str | None = None

    @classmethod
    def from_platform(cls, ires: "IReS", workflow: str | None = None,
                      root: Path | str | None = None) -> "LintContext":
        """Build a full context from an :class:`~repro.core.platform.IReS`."""
        from repro.core.estimators import ModelBackedEstimator

        return cls(
            library=ires.library,
            abstract_operators=dict(ires.abstract_operators),
            datasets=dict(ires.datasets),
            workflows=dict(ires.workflows),
            engines=frozenset(ires.cloud.engines),
            modeler=ires.modeler,
            model_backed=isinstance(ires.estimator, ModelBackedEstimator),
            resilience=ires.executor.resilience,
            root=Path(root) if root is not None else None,
            workflow_filter=workflow,
        )

    # -- selection -----------------------------------------------------------
    def selected_workflows(self) -> dict[str, AbstractWorkflow]:
        """The workflows in scope (all, or just ``workflow_filter``)."""
        if self.workflow_filter is None:
            return self.workflows
        workflow = self.workflows.get(self.workflow_filter)
        return {self.workflow_filter: workflow} if workflow is not None else {}

    def scoped_abstract_operators(self) -> dict[str, AbstractOperator]:
        """Library-level abstract operators plus workflow-local ones."""
        out = dict(self.abstract_operators)
        for workflow in self.selected_workflows().values():
            for name, operator in workflow.operators.items():
                out.setdefault(name, operator)
        return out

    # -- locations -----------------------------------------------------------
    def artifact_file(self, kind: str, name: str) -> Path | None:
        """The on-disk source of an artefact, when the library has a root."""
        if self.root is None:
            return None
        directory, leaf = _KIND_PATHS[kind]
        path = self.root / directory / name
        if leaf is not None:
            path = path / leaf
        return path if path.is_file() else None

    def location(self, kind: str, name: str, line: int | None = None,
                 key: str | None = None) -> str:
        """``file:line`` when file-backed, else the dotted key, else ``""``."""
        path = self.artifact_file(kind, name)
        if path is not None:
            rel = path.relative_to(self.root) if self.root else path
            return f"{rel}:{line}" if line is not None else str(rel)
        return key or ""


@runtime_checkable
class Pass(Protocol):
    """One static-analysis pass: report findings, never raise."""

    name: str

    def run(self, ctx: LintContext, out: DiagnosticCollector) -> None:
        """Inspect the context and report into the collector."""
        ...
