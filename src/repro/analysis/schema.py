"""Schema pass: required keys, value types and unit sanity (IRES00x).

Checks every loaded artefact's meta-data tree — and, when the library has
an on-disk root, re-scans the raw description files for defects the tree
cannot represent (duplicate dotted keys, where the last occurrence silently
wins).  Unparseable files never make it into the tree at all; those are
reported as ``IRES001`` by the tolerant loader.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Callable, Iterator

from repro.analysis.diagnostics import DiagnosticCollector
from repro.analysis.passes import LintContext
from repro.core.dataset import Dataset
from repro.core.metadata import PREDEFINED_ROOTS, WILDCARD, MetadataTree
from repro.core.operators import AbstractOperator, MaterializedOperator

#: keys whose values must parse as numbers, with their sane lower bound
NUMERIC_KEYS: dict[str, float] = {
    "Constraints.Input.number": 0.0,
    "Constraints.Output.number": 1.0,
    "Optimization.size": 0.0,
    "Optimization.count": 0.0,
    "Optimization.documents": 0.0,
    "Optimization.execTime": 0.0,
    "Optimization.cost": 0.0,
}

#: keys a materialized operator description must define
REQUIRED_OPERATOR_KEYS = (
    "Constraints.Engine",
    "Constraints.OpSpecification.Algorithm.name",
)

_SPEC_KEY = re.compile(r"^(Input|Output)(\d+)$")

Locator = Callable[[str], str]


def _key_lines(path: Path) -> dict[str, int]:
    """Map ``dotted.key -> first line number`` for a description file."""
    lines: dict[str, int] = {}
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return lines
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#") or "=" not in line:
            continue
        key = line.partition("=")[0].strip()
        lines.setdefault(key, lineno)
    return lines


def _duplicate_keys(path: Path) -> Iterator[tuple[str, int]]:
    """Yield ``(key, line)`` for every re-assignment of a dotted key."""
    seen: dict[str, int] = {}
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#") or "=" not in line:
            continue
        key = line.partition("=")[0].strip()
        if key in seen:
            yield key, lineno
        else:
            seen[key] = lineno


class SchemaPass:
    """Validate artefact descriptions against the meta-data contract."""

    name = "schema"

    def run(self, ctx: LintContext, out: DiagnosticCollector) -> None:
        """Check datasets, materialized and abstract operators."""
        for name, dataset in sorted(ctx.datasets.items()):
            locate = self._locator(ctx, "dataset", name)
            artifact = f"dataset:{name}"
            self._check_duplicates(ctx, "dataset", name, artifact, out)
            self._check_values(dataset.metadata, artifact, locate, out)
            if dataset.materialized:
                self._check_wildcards(dataset.metadata, artifact, locate, out)
        for operator in sorted(ctx.library, key=lambda op: op.name):
            self._check_materialized(ctx, operator, out)
        for name, abstract in sorted(ctx.scoped_abstract_operators().items()):
            locate = self._locator(ctx, "abstract", name)
            artifact = f"abstract:{name}"
            self._check_duplicates(ctx, "abstract", name, artifact, out)
            self._check_values(abstract.metadata, artifact, locate, out)
            self._check_spec_arity(abstract, artifact, locate, out)

    # -- helpers -------------------------------------------------------------
    def _locator(self, ctx: LintContext, kind: str, name: str) -> Locator:
        """A ``key -> location`` function, file:line-aware when possible."""
        path = ctx.artifact_file(kind, name)
        if path is None:
            return lambda key: key
        key_lines = _key_lines(path)
        return lambda key: ctx.location(kind, name, line=key_lines.get(key),
                                        key=key)

    def _check_duplicates(self, ctx: LintContext, kind: str, name: str,
                          artifact: str, out: DiagnosticCollector) -> None:
        path = ctx.artifact_file(kind, name)
        if path is None:
            return
        for key, lineno in _duplicate_keys(path):
            out.report(
                "IRES006",
                f"duplicate key {key!r} (the last occurrence wins)",
                artifact=artifact,
                location=ctx.location(kind, name, line=lineno),
                hint="remove or merge the earlier assignment",
            )

    def _check_values(self, tree: MetadataTree, artifact: str,
                      locate: Locator, out: DiagnosticCollector) -> None:
        """Numeric types, sane ranges and unknown top-level subtrees."""
        for key, bound in NUMERIC_KEYS.items():
            value = tree.get(key)
            if value is None or value == WILDCARD:
                continue
            try:
                number = float(value)
            except ValueError:
                out.report(
                    "IRES003",
                    f"{key}={value!r} is not numeric",
                    artifact=artifact, location=locate(key),
                    hint=f"use a number (e.g. {key}=1)",
                )
                continue
            if number < bound:
                out.report(
                    "IRES004",
                    f"{key}={value} is below its minimum {bound:g}",
                    artifact=artifact, location=locate(key),
                    hint="negative sizes/arities break cost estimation",
                )
        for label, _child in tree.children():
            if label not in PREDEFINED_ROOTS:
                out.report(
                    "IRES007",
                    f"unknown top-level subtree {label!r} "
                    f"(predefined: {', '.join(PREDEFINED_ROOTS)})",
                    artifact=artifact, location=locate(label),
                    hint="ad-hoc trees belong under a predefined root",
                )

    def _check_wildcards(self, tree: MetadataTree, artifact: str,
                         locate: Locator, out: DiagnosticCollector) -> None:
        """Materialized descriptions must fill every field — no ``*``."""
        for key, value in tree.leaves():
            if value == WILDCARD:
                out.report(
                    "IRES005",
                    f"{key}=* wildcard in a materialized description",
                    artifact=artifact, location=locate(key),
                    hint="materialized artefacts must pin concrete values",
                )

    def _check_spec_arity(self, operator: AbstractOperator | MaterializedOperator,
                          artifact: str, locate: Locator,
                          out: DiagnosticCollector) -> None:
        """``InputN``/``OutputN`` subtrees must fit the declared arity."""
        constraints = operator.metadata.node("Constraints")
        if constraints is None:
            return
        try:
            declared = {"Input": operator.n_inputs, "Output": operator.n_outputs}
        except Exception:
            return  # non-numeric arity already reported by _check_values
        for label, _child in constraints.children():
            match = _SPEC_KEY.match(label)
            if match is None:
                continue
            kind, index = match.group(1), int(match.group(2))
            if index >= declared[kind]:
                out.report(
                    "IRES008",
                    f"Constraints.{label} exceeds declared "
                    f"Constraints.{kind}.number={declared[kind]}",
                    artifact=artifact,
                    location=locate(f"Constraints.{kind}.number"),
                    hint=f"raise {kind}.number or renumber the spec",
                )

    def _check_materialized(self, ctx: LintContext,
                            operator: MaterializedOperator,
                            out: DiagnosticCollector) -> None:
        locate = self._locator(ctx, "operator", operator.name)
        artifact = f"operator:{operator.name}"
        self._check_duplicates(ctx, "operator", operator.name, artifact, out)
        for key in REQUIRED_OPERATOR_KEYS:
            if operator.metadata.get(key) is None:
                out.report(
                    "IRES002",
                    f"materialized operator is missing {key}",
                    artifact=artifact,
                    location=ctx.location("operator", operator.name, key=key),
                    hint=f"add a {key}=... line to the description",
                )
        self._check_values(operator.metadata, artifact, locate, out)
        self._check_wildcards(operator.metadata, artifact, locate, out)
        self._check_spec_arity(operator, artifact, locate, out)
