"""Static analysis over the IReS artifact layer (``ires lint``).

A multi-pass analyzer with a reusable diagnostics core: stable ``IRES0xx``
codes, error/warning/info severities, ``file:line`` or dotted-key
locations and fix hints, aggregated by a collector instead of raising on
the first defect.  See DESIGN.md §8 for the pass catalogue and code table.
"""

from repro.analysis.config import ConfigPass
from repro.analysis.dataflow import DataflowPass
from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    DiagnosticCollector,
    LintFailure,
    code_table,
)
from repro.analysis.lint import (
    default_passes,
    lint_library,
    lint_platform,
    preflight_workflow,
    run_passes,
)
from repro.analysis.match import MatchPass, first_divergence
from repro.analysis.model_readiness import ModelReadinessPass
from repro.analysis.passes import LintContext, Pass
from repro.analysis.schema import SchemaPass

__all__ = [
    "CODES",
    "ConfigPass",
    "DataflowPass",
    "Diagnostic",
    "DiagnosticCollector",
    "LintContext",
    "LintFailure",
    "MatchPass",
    "ModelReadinessPass",
    "Pass",
    "SchemaPass",
    "code_table",
    "default_passes",
    "first_divergence",
    "lint_library",
    "lint_platform",
    "preflight_workflow",
    "run_passes",
]
