"""Static analysis over the IReS artifact layer (``ires lint``) plus
concurrency-correctness tooling (``ires analyze``).

A multi-pass analyzer with a reusable diagnostics core: stable ``IRES0xx``
codes, error/warning/info severities, ``file:line`` or dotted-key
locations and fix hints, aggregated by a collector instead of raising on
the first defect.  See DESIGN.md §8 for the pass catalogue and code table
and §13 for the concurrency codes.

Exports resolve lazily (PEP 562): the lint passes import ``repro.core``,
whose modules import :mod:`repro.analysis.runtime_check` for their lock
factories — an eager ``__init__`` would turn that into an import cycle.
"""

from typing import TYPE_CHECKING, Any

#: export name -> defining submodule
_EXPORTS: dict[str, str] = {
    "CODES": "repro.analysis.diagnostics",
    "Diagnostic": "repro.analysis.diagnostics",
    "DiagnosticCollector": "repro.analysis.diagnostics",
    "LintFailure": "repro.analysis.diagnostics",
    "code_table": "repro.analysis.diagnostics",
    "ConfigPass": "repro.analysis.config",
    "DataflowPass": "repro.analysis.dataflow",
    "default_passes": "repro.analysis.lint",
    "lint_library": "repro.analysis.lint",
    "lint_platform": "repro.analysis.lint",
    "preflight_workflow": "repro.analysis.lint",
    "run_passes": "repro.analysis.lint",
    "MatchPass": "repro.analysis.match",
    "first_divergence": "repro.analysis.match",
    "ModelReadinessPass": "repro.analysis.model_readiness",
    "LintContext": "repro.analysis.passes",
    "Pass": "repro.analysis.passes",
    "SchemaPass": "repro.analysis.schema",
    "AsyncHygienePass": "repro.analysis.concurrency",
    "ThreadSafetyPass": "repro.analysis.concurrency",
    "analyze_paths": "repro.analysis.concurrency",
    "ConcurrencyChecker": "repro.analysis.runtime_check",
    "InstrumentedLock": "repro.analysis.runtime_check",
    "InstrumentedRLock": "repro.analysis.runtime_check",
    "make_lock": "repro.analysis.runtime_check",
    "make_rlock": "repro.analysis.runtime_check",
    "note_access": "repro.analysis.runtime_check",
    "register_shared": "repro.analysis.runtime_check",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.concurrency import (  # noqa: F401
        AsyncHygienePass,
        ThreadSafetyPass,
        analyze_paths,
    )
    from repro.analysis.config import ConfigPass  # noqa: F401
    from repro.analysis.dataflow import DataflowPass  # noqa: F401
    from repro.analysis.diagnostics import (  # noqa: F401
        CODES,
        Diagnostic,
        DiagnosticCollector,
        LintFailure,
        code_table,
    )
    from repro.analysis.lint import (  # noqa: F401
        default_passes,
        lint_library,
        lint_platform,
        preflight_workflow,
        run_passes,
    )
    from repro.analysis.match import MatchPass, first_divergence  # noqa: F401
    from repro.analysis.model_readiness import ModelReadinessPass  # noqa: F401
    from repro.analysis.passes import LintContext, Pass  # noqa: F401
    from repro.analysis.runtime_check import (  # noqa: F401
        ConcurrencyChecker,
        InstrumentedLock,
        InstrumentedRLock,
        make_lock,
        make_rlock,
        note_access,
        register_shared,
    )
    from repro.analysis.schema import SchemaPass  # noqa: F401


def __getattr__(name: str) -> Any:
    """Resolve exports on first access (PEP 562)."""
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
