"""Figure 12 — text analytics (tf-idf → k-means) vs corpus size.

Paper's shape: centralized scikit wins below ~10k documents, Spark wins
large corpora, and in the 10k–40k band IReS builds a *hybrid* plan (scikit
tf-idf + Spark k-means + an automatic move) that beats the best single
engine by up to ~30%.
"""

import pytest

from figutil import INF, emit
from repro.core import IReS, PlanningError
from repro.scenarios import setup_text_analytics

DOC_SIZES = [5e3, 1e4, 2e4, 3e4, 4e4, 6e4, 1e5]
LAUNCH_OVERHEAD = 2.0


def compute_series():
    ires = IReS()
    make = setup_text_analytics(ires)
    rows = []
    for docs in DOC_SIZES:
        single = {}
        for engine in ("scikit", "Spark"):
            try:
                single[engine] = ires.planner.plan(
                    make(docs), available_engines={engine}).cost
            except PlanningError:
                single[engine] = INF
        plan = ires.plan(make(docs))
        engines = sorted(plan.engines_used())
        best_single = min(single.values())
        speedup = (best_single - plan.cost) / best_single if best_single else 0.0
        rows.append([
            f"{docs:.0f}", single["scikit"], single["Spark"],
            plan.cost + LAUNCH_OVERHEAD, "+".join(engines),
            100.0 * speedup,
        ])
    return rows


@pytest.fixture(scope="module")
def series():
    return compute_series()


def test_fig12_text_analytics(benchmark, series):
    emit(
        "fig12_text", "Figure 12: tf-idf + k-means execution time (s) vs documents",
        ["docs", "scikit", "Spark", "IReS", "plan", "gain_%"],
        series, widths=[10, 10, 10, 10, 16, 9],
        note="(gain_% = IReS plan vs best single engine, before overheads)",
    )
    by_docs = {row[0]: row for row in series}
    # three regimes: scikit-only small, hybrid in the middle, Spark-only large
    assert by_docs["5000"][4] == "scikit"
    assert by_docs["20000"][4] == "Spark+scikit"
    assert by_docs["30000"][4] == "Spark+scikit"
    assert by_docs["100000"][4] == "Spark"
    # the hybrid's win over the best single engine peaks in the 10k-40k band
    hybrid_gains = [row[5] for row in series if "+" in row[4]]
    assert max(hybrid_gains) >= 10.0  # the paper reports up to 30%

    ires = IReS()
    make = setup_text_analytics(ires)
    wf = make(2.5e4)
    benchmark(lambda: ires.plan(wf))
