"""Figure 15 — optimization time for Montage & Epigenomics vs engine count.

Paper's shape: more alternative implementations per operator cost more (the
m² term of O(op·m²·k)), but even 100-node workflows with 8 engines optimize
within a couple of seconds; 10-node workflows stay sub-second.
"""

import time

import pytest

from figutil import emit
from repro.core import Planner
from repro.core.planner import MetadataCostEstimator
from repro.workflows import generate, synthetic_library

NODE_SIZES = [10, 30, 100, 300]
ENGINE_COUNTS = [2, 4, 6, 8]
CATEGORIES = ("Montage", "Epigenomics")


def plan_time(category: str, n_nodes: int, n_engines: int) -> float:
    workflow = generate(category, n_nodes, seed=1)
    library = synthetic_library(workflow, n_engines, seed=2)
    planner = Planner(library, MetadataCostEstimator())
    start = time.perf_counter()
    planner.plan(workflow)
    return time.perf_counter() - start


@pytest.fixture(scope="module")
def series():
    return {
        (category, m, n): plan_time(category, n, m)
        for category in CATEGORIES
        for m in ENGINE_COUNTS
        for n in NODE_SIZES
    }


def test_fig15_engines_scaling(benchmark, series):
    for category in CATEGORIES:
        rows = [
            [f"{m} engines"] + [series[(category, m, n)] for n in NODE_SIZES]
            for m in ENGINE_COUNTS
        ]
        emit(
            f"fig15_{category.lower()}",
            f"Figure 15: optimization time (s) for {category} vs #engines",
            ["engines"] + [str(n) for n in NODE_SIZES],
            rows, widths=[12, 10, 10, 10, 10],
        )
    # 100-node workflows with 8 engines stay within "a couple of seconds"
    for category in CATEGORIES:
        assert series[(category, 8, 100)] < 3.0
        # an average 10-node workflow optimizes in the sub-second time-scale
        assert series[(category, 8, 10)] < 1.0
        # planning cost grows with the number of engines
        assert series[(category, 8, 300)] > series[(category, 2, 300)]

    benchmark(lambda: plan_time("Epigenomics", 100, 4))
