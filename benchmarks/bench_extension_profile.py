"""Extension — continuous profiling: overhead, attribution, flame artifacts.

Four gates over the span-attributed sampling profiler (DESIGN.md §14,
:mod:`repro.obs.profiling`):

- **overhead**: the always-on service-rate sampler (``SERVICE_HZ`` = 19 Hz)
  must cost ≤ 5% of the p50 plan+execute wall latency of a HelloWorld run,
  measured interleaved (profiler off / profiler on) so clock drift and
  model-refit noise hit both sides alike; the sampler's self-measured
  overhead (its ``ires_profiler_overhead_seconds_total`` accounting) is
  reported as a cross-check;
- **artifacts**: a chaos Montage-40 execution (transient faults at rate
  0.2) profiled at the CLI default rate must export a structurally valid
  speedscope document and a self-contained HTML flamegraph, both written
  under ``benchmarks/results/``;
- **attribution**: under an 8-worker service burst, ≥ 95% of samples whose
  stacks carry a run-named marker frame must be attributed to that run —
  ground truth comes from the frame itself, not the attribution registry
  being tested;
- **cold-plan hotspots**: profiling the Fig-14 Montage-1000 cold DP plan
  records the planner's top self-time functions into
  ``benchmarks/results/ext_profile_hotspots.txt``.

Results land in ``benchmarks/results/ext_profile.txt`` and are serialized
to ``BENCH_profile.json`` at the repo root (a CI artifact).
"""

import asyncio
import json
import statistics
import time
import types
from pathlib import Path

import pytest

from figutil import emit
from repro.core import IReS, Planner
from repro.core.planner import MetadataCostEstimator
from repro.engines.profiles import PerfModel
from repro.obs.context import bind_run_id
from repro.obs.profiling import (
    DEFAULT_HZ,
    SERVICE_HZ,
    SamplingProfiler,
    flamegraph_html,
    hot_functions_from_speedscope,
    validate_speedscope,
)
from repro.scenarios import setup_helloworld
from repro.workflows import generate, synthetic_library

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: acceptance gate: the 19 Hz service sampler may cost at most this
#: fraction of the p50 plan+execute latency
OVERHEAD_CEILING = 0.05
#: latency sample count per mode for the interleaved overhead comparison
LATENCY_RUNS = 15
#: acceptance gate: marker-frame samples attributed to the right run
ATTRIBUTION_FLOOR = 0.95

BURST_WORKERS = 8
BURST_RUNS = 16


def _montage_platform(n_nodes: int, n_engines: int, seed: int = 1):
    """An executable synthetic Montage platform (engines have per-alg
    perf profiles so the simulator can run every planned step)."""
    workflow = generate("Montage", n_nodes, seed=seed)
    library = synthetic_library(workflow, n_engines, seed=seed + 1)
    algs = sorted({op.algorithm for op in workflow.operators.values()})
    ires = IReS()
    for j in range(n_engines):
        ires.cloud.add_engine(
            f"engine{j}",
            profiles={alg: PerfModel(fixed=0.5, per_unit=0.0)
                      for alg in algs})
    for op in library:
        ires.register_operator(op)
    return ires, workflow


@pytest.fixture(scope="module")
def overhead_times():
    """p50 plan+execute wall latency, profiler off vs on at SERVICE_HZ."""
    def platform():
        # plan cache off: every repetition pays the full plan+execute
        # work whose sampling overhead is being measured
        ires = IReS(plan_cache=False)
        make = setup_helloworld(ires)
        workflow = make()
        return lambda: ires.execute(workflow)

    run_bare = platform()
    run_sampled = platform()
    run_bare(), run_sampled()  # warm both paths

    bare, sampled = [], []
    self_overhead = duration = 0.0
    samples = 0
    for _ in range(LATENCY_RUNS):  # interleave to cancel drift
        start = time.perf_counter()
        run_bare()
        bare.append(time.perf_counter() - start)
        profiler = SamplingProfiler(hz=SERVICE_HZ).start()
        try:
            start = time.perf_counter()
            with bind_run_id("overhead-probe"):
                run_sampled()
            sampled.append(time.perf_counter() - start)
        finally:
            profile = profiler.stop()
        self_overhead += profile.overhead
        duration += profile.duration
        samples += len(profile.samples)
    return {
        "bare_p50": statistics.median(bare),
        "sampled_p50": statistics.median(sampled),
        "self_overhead_seconds": self_overhead,
        "duration": duration,
        "samples": samples,
    }


@pytest.fixture(scope="module")
def montage_artifacts():
    """Chaos Montage-40 execution profiled at the CLI default rate."""
    ires, workflow = _montage_platform(40, 4)
    ires.fault_injector.seed = 7
    ires.fault_injector.make_all_flaky(0.2)
    profiler = SamplingProfiler(hz=DEFAULT_HZ, track_allocations=True)
    if profiler.allocation_tracker is not None:
        ires.tracer.add_hook(profiler.allocation_tracker)
    profiler.start()
    start = time.perf_counter()
    try:
        # ires.execute binds its own run id; samples attribute to it
        report = ires.execute(workflow)
    finally:
        profile = profiler.stop()
    wall = time.perf_counter() - start
    doc = profile.speedscope(name="Montage-40 chaos execution")
    problems = validate_speedscope(doc)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ext_profile_montage.json").write_text(
        json.dumps(doc) + "\n")
    html = flamegraph_html(doc, title="IReS: Montage-40 chaos execution")
    (RESULTS_DIR / "ext_profile_flame.html").write_text(html)
    return {
        "report": report, "profile": profile, "doc": doc,
        "problems": problems, "wall": wall, "html_bytes": len(html),
    }


class _MarkerPlatform:
    """Stub platform whose execute busy-spins inside ``marker_<run_id>``,
    giving every sample a ground-truth run label in the stack itself."""

    def __init__(self, seconds: float = 0.2):
        self.workflows = {"busy": object()}
        self.executor = types.SimpleNamespace(journal_dir=None)
        self.seconds = seconds

    def execute(self, workflow, control=None, run_id=None, resume_from=None):
        ns: dict = {}
        exec(  # noqa: S102 — bench-only ground-truth frame naming
            f"def marker_{run_id}(deadline, perf_counter):\n"
            f"    while perf_counter() < deadline:\n"
            f"        sum(i * i for i in range(100))\n", ns)
        ns[f"marker_{run_id}"](time.perf_counter() + self.seconds,
                               time.perf_counter)
        return types.SimpleNamespace(
            sim_time=1.0, replans=0, retries=0, executions=[],
            recovered_steps=0, cached_plans=0)


@pytest.fixture(scope="module")
def burst_attribution():
    """Attribution accuracy of an 8-worker burst, marker ground truth."""
    from repro.api.service import IResService

    profiler = SamplingProfiler(hz=250)
    service = IResService(_MarkerPlatform(), workers=BURST_WORKERS,
                          queue_limit=BURST_RUNS + BURST_WORKERS,
                          profiler=profiler)

    async def main():
        await service.start()
        recs = [service.submit("busy", tenant=f"t{i % 4}")
                for i in range(BURST_RUNS)]
        for rec in recs:
            await service.wait(rec.run_id, timeout=300)
        full = profiler.snapshot()
        await service.shutdown()
        return recs, full

    recs, full = asyncio.run(main())
    correct = total = 0
    for sample in full.samples:
        marked = [f[0] for f in sample.frames if f[0].startswith("marker_")]
        if not marked:
            continue
        total += 1
        if sample.run_id == marked[-1].removeprefix("marker_"):
            correct += 1
    return {
        "recs": recs,
        "marker_samples": total,
        "correct": correct,
        "accuracy": (correct / total) if total else 0.0,
        "dropped": sum(full.dropped.values()),
    }


@pytest.fixture(scope="module")
def coldplan_hotspots():
    """Fig-14 Montage-1000 cold DP plan under the profiler."""
    workflow = generate("Montage", 1000, seed=1)
    library = synthetic_library(workflow, 4, seed=2)
    planner = Planner(library, MetadataCostEstimator())
    profiler = SamplingProfiler(hz=DEFAULT_HZ).start()
    start = time.perf_counter()
    try:
        with bind_run_id("montage-1000-cold-plan"):
            planner.plan(workflow)
    finally:
        profile = profiler.stop()
    wall = time.perf_counter() - start
    hot = hot_functions_from_speedscope(
        profile.speedscope(name="Montage-1000 cold plan"), limit=12)
    return {"wall": wall, "samples": len(profile.samples), "hot": hot}


def test_profiling_overhead_attribution_and_artifacts(
        benchmark, overhead_times, montage_artifacts, burst_attribution,
        coldplan_hotspots):
    times, montage = overhead_times, montage_artifacts
    burst, cold = burst_attribution, coldplan_hotspots

    overhead_frac = times["sampled_p50"] / times["bare_p50"] - 1.0
    self_frac = (times["self_overhead_seconds"] / times["duration"]
                 if times["duration"] else 0.0)
    mprofile = montage["profile"]

    rows = [
        ["service sampling rate (Hz)", SERVICE_HZ, ""],
        ["bare p50 (s)", round(times["bare_p50"], 4), ""],
        ["sampled p50 (s)", round(times["sampled_p50"], 4), ""],
        ["overhead", f"{overhead_frac * 100:.2f}%",
         f"gate <= {OVERHEAD_CEILING * 100:.0f}%"],
        ["sampler self-accounting", f"{self_frac * 100:.3f}%", ""],
        ["montage chaos wall (s)", round(montage["wall"], 2), ""],
        ["montage samples", len(mprofile.samples), "> 0"],
        ["speedscope problems", len(montage["problems"]), "gate == 0"],
        ["flamegraph bytes", montage["html_bytes"], "> 0"],
        ["burst workers", BURST_WORKERS, ""],
        ["burst marker samples", burst["marker_samples"], ">= 100"],
        ["attribution accuracy", f"{burst['accuracy'] * 100:.2f}%",
         f"gate >= {ATTRIBUTION_FLOOR * 100:.0f}%"],
        ["cold-plan wall (s)", round(cold["wall"], 2), ""],
        ["cold-plan samples", cold["samples"], "> 0"],
    ]
    emit(
        "ext_profile",
        f"Extension: sampling profiler at {SERVICE_HZ:.0f} Hz service rate",
        ["metric", "value", "gate"],
        rows, widths=[28, 14, 14],
        note="(overhead interleaved over HelloWorld plan+execute; "
             "attribution ground truth from run-named marker frames)",
    )
    hot_rows = [[h["function"], round(h["selfSeconds"], 4),
                 round(h["totalSeconds"], 4)] for h in cold["hot"]]
    emit(
        "ext_profile_hotspots",
        "Fig-14 Montage-1000 cold plan: top planner self-time functions",
        ["function", "self_s", "total_s"],
        hot_rows, widths=[56, 10, 10],
        note=f"({cold['samples']} samples at {DEFAULT_HZ:.0f} Hz over "
             f"{cold['wall']:.2f}s of DP planning)",
    )

    payload = {
        "overhead": {
            "service_hz": SERVICE_HZ,
            "bare_p50_seconds": round(times["bare_p50"], 5),
            "sampled_p50_seconds": round(times["sampled_p50"], 5),
            "overhead_fraction": round(overhead_frac, 5),
            "overhead_ceiling": OVERHEAD_CEILING,
            "self_accounting_fraction": round(self_frac, 6),
            "samples_per_mode": LATENCY_RUNS,
        },
        "montage_chaos": {
            "wall_seconds": round(montage["wall"], 3),
            "samples": len(mprofile.samples),
            "dropped": dict(mprofile.dropped),
            "speedscope_problems": montage["problems"],
            "flamegraph_bytes": montage["html_bytes"],
            "retries": montage["report"].retries,
            "replans": montage["report"].replans,
        },
        "attribution": {
            "workers": BURST_WORKERS,
            "runs": BURST_RUNS,
            "marker_samples": burst["marker_samples"],
            "correct": burst["correct"],
            "accuracy": round(burst["accuracy"], 5),
            "floor": ATTRIBUTION_FLOOR,
        },
        "cold_plan": {
            "workflow": "Montage-1000, 4 engines",
            "wall_seconds": round(cold["wall"], 3),
            "samples": cold["samples"],
            "hotspots": cold["hot"],
        },
    }
    (REPO_ROOT / "BENCH_profile.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # gate 1: the always-on service rate costs ≤ 5% of p50 plan+execute
    assert overhead_frac <= OVERHEAD_CEILING, (
        times["bare_p50"], times["sampled_p50"])
    # gate 2: chaos Montage run exports valid speedscope + flamegraph
    assert montage["report"].succeeded
    assert montage["problems"] == [], montage["problems"]
    assert len(mprofile.samples) > 0
    assert montage["html_bytes"] > 0
    # the run's samples are attributed to the execution's own run id
    assert montage["report"].run_id in montage["doc"]["ires"]["runs"]
    # gate 3: ≥ 95% of marker samples carry the marker's own run id
    assert all(rec.state == "succeeded" for rec in burst["recs"])
    assert burst["marker_samples"] >= 100, burst
    assert burst["accuracy"] >= ATTRIBUTION_FLOOR, burst
    # gate 4: the cold plan profile names real planner hotspots
    assert cold["samples"] > 0
    assert cold["hot"], "no hotspots recorded"
    # the DP's time goes to candidate expansion and metadata split/copy
    assert any("core/planner.py" in h["function"]
               or "core/metadata.py" in h["function"]
               for h in cold["hot"][:6]), cold["hot"]

    benchmark(lambda: None)
