"""MuSQLE Figures 7–10 — TPCH query times: MuSQLE vs single engines.

- Fig 7 (all tables stored in all engines): MuSQLE mostly selects the best
  engine, so it tracks the fastest single-engine time.
- Figs 8–10 (each table in its designated engine, growing scale): a single
  engine must first fetch the non-resident tables; MemSQL OOMs on the big
  joins, PostgreSQL becomes fetch-bound, and MuSQLE — pushing sub-queries
  where their tables live — beats the best single engine by up to an order
  of magnitude on the filter-heavy queries.
"""

import pytest

from figutil import INF, emit
from repro.engines import MemoryExceededError
from repro.musqle import LocalSQLEngine, MuSQLE, build_default_deployment
from repro.musqle.queries import ALL_QUERIES

#: representative subset (id -> sql) keeping the bench under a minute
QUERY_IDS = [2, 5, 6, 8, 11, 13, 14, 16, 17]
SPLIT_SCALES = [2.0, 10.0, 25.0]


def single_engine_seconds(deployment, engine_name: str, sql: str) -> float:
    """Run the whole query on one engine, fetching non-resident tables first."""
    source = deployment.engines[engine_name]
    engine = LocalSQLEngine(
        engine_name, source.cost_model, deployment.clock,
        dict(source.resident), join_bias=source.join_bias, seed=99,
    )
    needed = [t for t in deployment.tables
              if t in sql and not engine.has_table(t)]
    start = deployment.clock.now
    try:
        for table in needed:
            engine.load_table(table, deployment.tables[table])
        engine.execute(sql)
    except MemoryExceededError:
        return INF
    return deployment.clock.now - start


def musqle_seconds(deployment, sql: str) -> float:
    musqle = MuSQLE(deployment)
    plan, _ = musqle.optimize(sql)
    try:
        _, info = musqle.execute(plan)
    except MemoryExceededError:
        return INF
    finally:
        musqle.cleanup()
    return info.sim_seconds


def compare(deployment) -> list[list]:
    rows = []
    for qid in QUERY_IDS:
        sql = ALL_QUERIES[qid]
        singles = {
            name: single_engine_seconds(deployment, name, sql)
            for name in deployment.engines
        }
        ours = musqle_seconds(deployment, sql)
        best = min(singles.values())
        speedup = best / ours if ours > 0 and best != INF else None
        rows.append([
            f"Q{qid}", singles["PostgreSQL"], singles["MemSQL"],
            singles["SparkSQL"], ours, speedup,
        ])
    return rows


@pytest.fixture(scope="module")
def everywhere_rows():
    return compare(build_default_deployment(2.0, seed=10, everywhere=True))


@pytest.fixture(scope="module")
def split_rows():
    return {
        scale: compare(build_default_deployment(scale, seed=10))
        for scale in SPLIT_SCALES
    }


HEADER = ["query", "PostgreSQL", "MemSQL", "SparkSQL", "MuSQLE", "best/ours"]
WIDTHS = [7, 12, 10, 10, 10, 11]


def test_musqle_fig7_everywhere(benchmark, everywhere_rows):
    emit("musqle_fig7_everywhere",
         "MuSQLE Fig 7: query time (s), all tables in all engines (scale 2)",
         HEADER, everywhere_rows, widths=WIDTHS)
    # with data everywhere, MuSQLE should track the best single engine
    ratios = [row[5] for row in everywhere_rows if row[5] is not None]
    assert sorted(ratios)[len(ratios) // 2] > 0.7  # median within 1.4x

    deployment = build_default_deployment(2.0, seed=11, everywhere=True)
    benchmark(lambda: musqle_seconds(deployment, ALL_QUERIES[5]))


def test_musqle_figs8_10_split_locations(benchmark, split_rows):
    for scale, rows in split_rows.items():
        emit(f"musqle_fig8_10_scale{int(scale)}",
             f"MuSQLE Figs 8-10: query time (s), split tables, scale {scale:g}",
             HEADER, rows, widths=WIDTHS)
    # MemSQL fails (OOM) on the lineitem-heavy queries at larger scales
    large = split_rows[SPLIT_SCALES[-1]]
    assert any(row[2] == INF for row in large)
    # MuSQLE beats the best single engine substantially on several queries
    speedups = [row[5] for rows in split_rows.values() for row in rows
                if row[5] is not None]
    assert max(speedups) > 2.0
    # ... and never loses badly (it can always mimic the best single plan)
    median = sorted(speedups)[len(speedups) // 2]
    assert median > 0.8

    deployment = build_default_deployment(2.0, seed=12)
    benchmark(lambda: musqle_seconds(deployment, ALL_QUERIES[13]))
