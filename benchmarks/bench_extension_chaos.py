"""Extension — chaos sweep over transient fault rates (resilience layer).

The Fig. 18–22 fault-tolerance evaluation assumes *permanent* engine kills;
real multi-engine clouds mostly throw transient faults.  This sweep injects
seeded flaky failures into every engine at increasing ``fail_rate`` and
compares three executors on the HelloWorld fault-tolerance workflow:

- ``Resilient``     — IResReplan + retry/backoff + circuit breakers;
- ``IResReplan``    — replans on first error (no retries), the §4.5 baseline;
- ``TrivialReplan`` — discards intermediates and replans from scratch.

Expected shape: the resilient executor absorbs transient faults with cheap
in-place retries, so it completes with strictly fewer replans and a higher
success rate, at a makespan cost bounded by the backoff it charges to the
simulated clock.  A *permanently* sick engine (fail_rate = 1) still trips
its breaker and is planned around — retries never loop forever.
"""

import pytest

from figutil import emit
from repro.core import IReS
from repro.execution import IRES_REPLAN, TRIVIAL_REPLAN, ResilienceManager
from repro.execution.enforcer import ExecutionFailed
from repro.scenarios import setup_helloworld

RATES = (0.0, 0.1, 0.2, 0.3)
SEEDS = range(5)
MODES = ("Resilient", "IResReplan", "TrivialReplan")


def run_one(mode: str, rate: float, seed: int):
    """One chaos execution; returns the report or None on ExecutionFailed."""
    resilience = None if mode == "Resilient" else ResilienceManager.baseline()
    strategy = TRIVIAL_REPLAN if mode == "TrivialReplan" else IRES_REPLAN
    ires = IReS(strategy=strategy, resilience=resilience)
    make = setup_helloworld(ires)
    ires.fault_injector.seed = seed
    if rate > 0:
        ires.fault_injector.make_all_flaky(rate)
    try:
        return ires.execute(make())
    except ExecutionFailed:
        return None


@pytest.fixture(scope="module")
def sweep():
    return {
        (mode, rate): [run_one(mode, rate, seed) for seed in SEEDS]
        for mode in MODES for rate in RATES
    }


def test_chaos_sweep(benchmark, sweep):
    rows = []
    for rate in RATES:
        for mode in MODES:
            reports = sweep[(mode, rate)]
            done = [r for r in reports if r is not None and r.succeeded]
            rows.append([
                rate, mode,
                100.0 * len(done) / len(reports),
                (sum(r.sim_time for r in done) / len(done)) if done else None,
                sum(r.replans for r in done),
                sum(r.retries for r in done),
            ])
    emit(
        "ext_chaos_sweep",
        "Extension: success rate and makespan vs transient fault rate",
        ["fail_rate", "mode", "success_%", "makespan_s", "replans", "retries"],
        rows, widths=[10, 15, 10, 12, 9, 9],
        note="(5 seeded runs per cell; makespan averaged over successes)",
    )
    # without faults the three executors behave identically (no overhead)
    for mode in MODES:
        assert all(r.succeeded and r.replans == 0 and r.retries == 0
                   for r in sweep[(mode, 0.0)])
    # under transient faults the resilient executor retries instead of
    # replanning: strictly fewer replans than replan-on-first-error
    for rate in (0.1, 0.2, 0.3):
        resilient = sweep[("Resilient", rate)]
        baseline = sweep[("IResReplan", rate)]
        r_replans = sum(r.replans for r in resilient if r is not None)
        b_replans = sum(r.replans for r in baseline if r is not None)
        assert r_replans < b_replans, (rate, r_replans, b_replans)
        r_ok = sum(1 for r in resilient if r is not None and r.succeeded)
        b_ok = sum(1 for r in baseline if r is not None and r.succeeded)
        assert r_ok >= b_ok
    benchmark(lambda: run_one("Resilient", 0.2, 1))


def test_permanently_sick_engine_trips_breaker(benchmark):
    """fail_rate=1 on one engine: breaker opens, the plan routes around it."""
    ires = IReS()
    make = setup_helloworld(ires)
    victim = ires.plan(make()).step_for_operator("HelloWorld2").engine
    ires.fault_injector.make_flaky(victim, 1.0)
    report = ires.execute(make())
    assert report.succeeded
    assert ires.resilience.breaker(victim).state == "open"
    # bounded retries, then exactly one replan around the sick engine
    assert report.retries == ires.resilience.retry_policy.max_attempts - 1
    assert report.replans == 1
    hw2 = [e.engine for e in report.executions
           if e.step.abstract_name == "HelloWorld2" and e.success]
    assert victim not in hw2

    emit(
        "ext_chaos_breaker",
        "Extension: permanently sick engine — breaker + replan-around",
        ["victim", "retries", "replans", "breaker", "final_engine"],
        [[victim, report.retries, report.replans,
          ires.resilience.breaker(victim).state, hw2[-1]]],
        widths=[12, 9, 9, 9, 14],
    )
    benchmark(lambda: ires.plan(make()))


def test_straggler_speculation(benchmark):
    """A 4× straggling engine is speculatively re-executed elsewhere."""
    from repro.execution import ParallelSimulator
    from repro.scenarios import setup_relational_analytics

    def simulate(speculation: bool):
        ires = IReS()
        make = setup_relational_analytics(ires)
        plan = ires.plan(make(10))
        straggler = next(s.engine for s in plan.steps if not s.is_move)
        ires.fault_injector.make_straggler(straggler, slowdown=4.0)
        sim = ParallelSimulator(
            ires.cloud, seed=1, charge_clock=False,
            fault_injector=ires.fault_injector, speculation=speculation)
        return sim.simulate(plan)

    slow = simulate(speculation=False)
    fast = simulate(speculation=True)
    assert slow.succeeded and fast.succeeded
    assert fast.speculations, "the straggler was not detected"
    assert fast.makespan <= slow.makespan
    emit(
        "ext_chaos_speculation",
        "Extension: straggler speculation on the relational workflow",
        ["mode", "makespan_s", "speculations"],
        [["no-speculation", slow.makespan, len(slow.speculations)],
         ["speculation", fast.makespan, len(fast.speculations)]],
        widths=[16, 12, 14],
    )
    benchmark(lambda: simulate(True).makespan)
