"""Extension — service telemetry: overhead, burn-rate alarm correctness.

Two gates over the DESIGN §12 telemetry stack (per-tenant accounting +
SLO burn-rate tracking wired into :mod:`repro.api.service`):

- **telemetry overhead**: accounting + SLO evaluation on every finished
  run must cost ≤ 5% of the p50 plan+execute latency under a ≥ 8-way
  concurrent burst, measured by the ``ires_service_telemetry_seconds``
  histogram (the same histogram-not-A/B method the journal gate uses —
  wall-clock diffs drown in model-refit noise);
- **alarm correctness**: a clean burst under the default SLOs must trip
  *zero* burn-rate alarms, while an injected latency regression (an SLO
  whose threshold sits below every real run latency) must trip the
  latency alarm within one evaluation window — i.e. by the very
  evaluation at which ``min_events`` runs have finished.

Results land in ``benchmarks/results/ext_slo.txt`` and are merged into
``BENCH_service.json`` under the ``"slo"`` key (read-merge-write: the
service bench owns the rest of that file).
"""

import asyncio
import json
import time
from pathlib import Path

import pytest

from figutil import emit
from repro.core import IReS
from repro.scenarios import setup_helloworld

REPO_ROOT = Path(__file__).resolve().parent.parent

WORKERS = 8
BURST = 24
TENANTS = 3
#: acceptance gate: telemetry may cost at most this fraction of p50 latency
OVERHEAD_CEILING = 0.05
#: events the regression SLO needs before it may alarm
MIN_EVENTS = 3


def _platform() -> IReS:
    ires = IReS()
    make = setup_helloworld(ires)
    workflow = make()
    ires.workflows[workflow.name] = workflow
    return ires


def _percentile(samples, q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _run_burst(slo=True):
    """Push a concurrent burst through a telemetry-enabled service."""
    from repro.api.service import IResService

    async def main():
        service = IResService(lambda: _platform(), workers=WORKERS,
                              queue_limit=2 * BURST, slo=slo)
        await service.start()
        start = time.perf_counter()
        recs = [service.submit("helloworld-chain", tenant=f"t{i % TENANTS}")
                for i in range(BURST)]
        for rec in recs:
            await service.wait(rec.run_id, timeout=600)
        wall = time.perf_counter() - start
        peak = service.peak_active
        await service.shutdown()
        return service, recs, wall, peak

    return asyncio.run(main())


@pytest.fixture(scope="module")
def clean_burst():
    """A clean burst under the default SLOs, telemetry cost measured."""
    from repro.obs.metrics import REGISTRY

    telemetry = REGISTRY.histogram("ires_service_telemetry_seconds", "")
    sum_before, count_before = telemetry.sum(), telemetry.value()
    service, recs, wall, peak = _run_burst()
    telemetry_seconds = telemetry.sum() - sum_before
    telemetry_events = int(telemetry.value() - count_before)
    latencies = [rec.finished_at - rec.submitted_at for rec in recs]
    return {
        "service": service, "recs": recs, "wall": wall, "peak": peak,
        "latencies": latencies,
        "telemetry_seconds_per_run": telemetry_seconds / max(
            telemetry_events, 1),
        "telemetry_events": telemetry_events,
    }


@pytest.fixture(scope="module")
def regression_burst():
    """The same burst with an SLO no real run can meet (the regression)."""
    from repro.obs.slo import SLOSpec, SLOTracker

    tracker = SLOTracker([SLOSpec(
        "latency-p99", "latency", target=0.9,
        # every real plan+execute takes far longer than 1ms: from the
        # SLO's point of view the service just regressed hard
        threshold_seconds=0.001,
        short_window_seconds=300.0, long_window_seconds=600.0,
        burn_rate_threshold=2.0, min_events=MIN_EVENTS,
    )])
    _run_burst(slo=tracker)
    return tracker


def test_telemetry_overhead_and_burn_rate_alarms(
        benchmark, clean_burst, regression_burst):
    latencies = clean_burst["latencies"]
    p50 = _percentile(latencies, 0.50)
    per_run = clean_burst["telemetry_seconds_per_run"]
    overhead_frac = per_run / p50
    clean_alarms = clean_burst["service"].slo.active_alarms()
    clean_fired = len(clean_burst["service"].slo.alarms)

    tracker = regression_burst
    regression_alarms = tracker.alarms
    first_alarm = regression_alarms[0] if regression_alarms else None

    rows = [
        ["burst size", BURST, ""],
        ["workers", WORKERS, ""],
        ["peak concurrent runs", clean_burst["peak"], f"gate >= {WORKERS}"],
        ["run p50 (s)", round(p50, 3), ""],
        ["run p99 (s)", round(_percentile(latencies, 0.99), 3), ""],
        ["telemetry us/run", round(per_run * 1e6, 1), ""],
        ["telemetry overhead", f"{overhead_frac * 100:.3f}%",
         f"gate <= {OVERHEAD_CEILING * 100:.0f}%"],
        ["clean-run alarms", clean_fired, "gate == 0"],
        ["regression alarms", len(regression_alarms), "gate >= 1"],
        ["alarm at event #", first_alarm.events_short if first_alarm
         else "-", f"gate <= {MIN_EVENTS + WORKERS}"],
    ]
    emit(
        "ext_slo",
        f"Extension: service telemetry + SLO alarms, {WORKERS} workers",
        ["metric", "value", "gate"],
        rows, widths=[24, 14, 14],
        note="(telemetry = accounting + SLO evaluation per finished run, "
             "measured by the ires_service_telemetry_seconds histogram; "
             "regression = an SLO threshold below every real latency)",
    )

    slo_payload = {
        "workers": WORKERS,
        "burst": BURST,
        "tenants": TENANTS,
        "run_p50_seconds": round(p50, 4),
        "run_p99_seconds": round(_percentile(latencies, 0.99), 4),
        "telemetry_seconds_per_run": round(per_run, 7),
        "telemetry_events": clean_burst["telemetry_events"],
        "overhead_fraction": round(overhead_frac, 6),
        "overhead_ceiling": OVERHEAD_CEILING,
        "clean_alarms_fired": clean_fired,
        "regression_alarms_fired": len(regression_alarms),
        "regression_alarm_events_short": (
            first_alarm.events_short if first_alarm else None),
        "regression_min_events": MIN_EVENTS,
    }
    bench_path = REPO_ROOT / "BENCH_service.json"
    payload = {}
    if bench_path.exists():  # the service bench owns the other keys
        payload = json.loads(bench_path.read_text())
    payload["slo"] = slo_payload
    bench_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # gate 0: the burst was genuinely concurrent and telemetry fired per run
    assert clean_burst["peak"] >= WORKERS, clean_burst["peak"]
    assert clean_burst["telemetry_events"] >= BURST
    # gate 1: telemetry costs ≤ 5% of p50 plan+execute latency
    assert overhead_frac <= OVERHEAD_CEILING, (per_run, p50)
    # gate 2a: a clean run trips no burn-rate alarm
    assert clean_fired == 0 and clean_alarms == []
    # gate 2b: the injected regression trips the latency alarm within one
    # evaluation window — the first evaluation at which min_events runs
    # exist (concurrent workers can land a few extra finishes before it)
    assert len(regression_alarms) >= 1
    assert first_alarm.slo == "latency-p99"
    assert first_alarm.events_short <= MIN_EVENTS + WORKERS
    assert "latency-p99" in tracker.active_alarms()
