"""Ablation — selective-attribute library index vs full-library scans.

The paper indexes the operator library by highly selective meta-data
attributes (the algorithm name) so abstract→materialized matching only
tree-matches a handful of candidates (§2.2.3).  This ablation plans the same
workflow with the index disabled, forcing a full scan of a large library per
abstract operator.
"""

import time

import pytest

from figutil import emit
from repro.core import MaterializedOperator, Planner
from repro.core.planner import MetadataCostEstimator
from repro.workflows import generate, synthetic_library

#: unrelated operators padding the library (a production library holds far
#: more operators than any one workflow touches)
PADDING_SIZES = [0, 500, 2000, 8000]


def padded_setup(padding: int):
    workflow = generate("Epigenomics", 60, seed=4)
    library = synthetic_library(workflow, 4, seed=5)
    for i in range(padding):
        library.add(MaterializedOperator(f"padding_{i}", {
            "Constraints.OpSpecification.Algorithm.name": f"unrelated_{i % 97}",
            "Constraints.Engine": f"engine{i % 8}",
            "Constraints.Input.number": 1,
            "Constraints.Output.number": 1,
            "Optimization.execTime": 1.0,
            "Optimization.cost": 1.0,
        }))
    return workflow, library


def plan_seconds(workflow, library, use_index: bool) -> float:
    planner = Planner(library, MetadataCostEstimator(), use_index=use_index)
    start = time.perf_counter()
    planner.plan(workflow)
    return time.perf_counter() - start


@pytest.fixture(scope="module")
def series():
    rows = []
    for padding in PADDING_SIZES:
        workflow, library = padded_setup(padding)
        indexed = plan_seconds(workflow, library, use_index=True)
        scanned = plan_seconds(workflow, library, use_index=False)
        rows.append([
            len(library), 1000 * indexed, 1000 * scanned,
            scanned / max(indexed, 1e-9),
        ])
    return rows


def test_ablation_library_index(benchmark, series):
    emit(
        "ablation_index",
        "Ablation: planning time (ms) with vs without the library index",
        ["library_ops", "indexed_ms", "scan_ms", "slowdown_x"],
        series, widths=[13, 12, 11, 12],
    )
    # both paths plan the same workflow; the indexed one must not degrade
    # as unrelated operators pile up, while the scan does
    baseline = series[0][1]
    assert series[-1][1] < baseline * 3.0
    assert series[-1][3] > 3.0  # full scan is several times slower at 8k ops

    workflow, library = padded_setup(2000)
    benchmark(lambda: plan_seconds(workflow, library, use_index=True))
