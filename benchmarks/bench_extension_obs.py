"""Extension — observability overhead: instrumented vs uninstrumented runs.

The observability layer (repro.obs) instruments the planner's DP expansion,
the enforcer's per-step execution and the library's match lookups.  An
always-on tracing layer is only acceptable if it stays out of the hot
paths, so this benchmark measures the same work twice — once with an
enabled :class:`~repro.obs.tracing.Tracer` and once with the disabled
``NULL_TRACER`` fast path — interleaved, min-of-N, on:

- the planner over a 300-node Montage workflow with 4 engines per stage
  (the per-abstract-operator span is the planner's only hot-path cost);
- an end-to-end HelloWorld execution (root span + one span per step).

Expected shape: both stay within 5% of the uninstrumented baseline — the
disabled-tracer branch skips span construction entirely, and the enabled
path adds O(1) dict work per operator against the DP table's O(candidates
× dp entries) inner loop.

The accuracy-ledger and plan-provenance layers ride the same hot paths
(one ``ledger.enabled`` check per step, one ``prov is not None`` check per
candidate on the NULL path), so their enabled cost is reported as
informational rows and the 5% gate keeps covering the disabled default.
"""

import time

import pytest

from figutil import emit
from repro.core import IReS, Planner
from repro.core.planner import MetadataCostEstimator
from repro.obs.accuracy import AccuracyLedger
from repro.obs.tracing import Tracer
from repro.scenarios import setup_helloworld
from repro.workflows import generate, synthetic_library

REPEATS = 7
#: accept up to this much instrumented/uninstrumented slowdown
OVERHEAD_BUDGET = 1.05


def _min_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def planner_times():
    workflow = generate("Montage", 300, seed=1)
    library = synthetic_library(workflow, 4, seed=2)
    plain = Planner(library, MetadataCostEstimator())
    traced = Planner(library, MetadataCostEstimator(), tracer=Tracer())
    # interleave the two measurements so drift hits both alike
    times = {"off": float("inf"), "on": float("inf")}
    for _ in range(REPEATS):
        times["off"] = min(times["off"], _min_of(
            lambda: plain.plan(workflow), repeats=1))
        times["on"] = min(times["on"], _min_of(
            lambda: traced.plan(workflow), repeats=1))
        traced.tracer.clear()
    return times


@pytest.fixture(scope="module")
def executor_times():
    def run(tracer: Tracer | None):
        # plan cache off: every repetition must include the full plan +
        # execute work whose instrumentation overhead is being measured
        ires = IReS(tracer=tracer, plan_cache=False)
        make = setup_helloworld(ires)
        workflow = make()
        return lambda: ires.execute(workflow)

    run_off = run(Tracer(enabled=False))
    run_on = run(None)  # platform default: enabled tracer on the sim clock
    times = {"off": float("inf"), "on": float("inf")}
    for _ in range(REPEATS):
        times["off"] = min(times["off"], _min_of(run_off, repeats=1))
        times["on"] = min(times["on"], _min_of(run_on, repeats=1))
    return times


@pytest.fixture(scope="module")
def ledger_times():
    """Informational: provenance-recording planner + ledger-on executor."""
    workflow = generate("Montage", 300, seed=1)
    library = synthetic_library(workflow, 4, seed=2)
    prov_planner = Planner(library, MetadataCostEstimator(),
                           record_provenance=True)
    times = {"planner_prov": float("inf"), "executor_ledger": float("inf")}
    ires = IReS(ledger=AccuracyLedger(), tracer=Tracer(enabled=False))
    make = setup_helloworld(ires)
    hello = make()
    for _ in range(REPEATS):
        times["planner_prov"] = min(times["planner_prov"], _min_of(
            lambda: prov_planner.plan(workflow), repeats=1))
        times["executor_ledger"] = min(times["executor_ledger"], _min_of(
            lambda: ires.execute(hello), repeats=1))
    return times


def test_obs_overhead(benchmark, planner_times, executor_times, ledger_times):
    rows = []
    for name, times in (("planner (Montage-300, 4 engines)", planner_times),
                        ("executor (HelloWorld chain)", executor_times)):
        ratio = times["on"] / times["off"]
        rows.append([name, times["off"] * 1e3, times["on"] * 1e3,
                     100.0 * (ratio - 1.0)])
    for name, base, on in (
        ("planner + provenance (info)", planner_times["off"],
         ledger_times["planner_prov"]),
        ("executor + ledger (info)", executor_times["off"],
         ledger_times["executor_ledger"]),
    ):
        rows.append([name, base * 1e3, on * 1e3, 100.0 * (on / base - 1.0)])
    emit(
        "ext_obs_overhead",
        "Extension: observability overhead (min-of-7 wall time)",
        ["surface", "off_ms", "on_ms", "overhead_%"],
        rows, widths=[34, 10, 10, 12],
        note=f"(budget: {100 * (OVERHEAD_BUDGET - 1):.0f}% — spans on the "
             "planner's DP expansion and every executor step; provenance/"
             "ledger rows are informational, their default-off path is what "
             "the gate covers)",
    )
    for name, times in (("planner", planner_times),
                        ("executor", executor_times)):
        assert times["on"] <= times["off"] * OVERHEAD_BUDGET, (
            name, times["on"] / times["off"])

    workflow = generate("Montage", 30, seed=1)
    library = synthetic_library(workflow, 4, seed=2)
    planner = Planner(library, MetadataCostEstimator(), tracer=Tracer())

    def traced_plan():
        planner.plan(workflow)
        planner.tracer.clear()

    benchmark(traced_plan)
