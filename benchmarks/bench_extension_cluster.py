"""Extension — shared-cluster scheduling: contention, policies, slowdown.

K concurrent workflows packed onto ONE shared cluster by the
:class:`~repro.execution.cluster.ClusterScheduler`, versus each workflow
simulated in isolation.  The contended burst is the adversarial shape for
naive FIFO: a batch of wide Montage-40 pipelines is admitted first, with
small Montage-8 and relational-analytics runs arriving behind them — under
strict admission order the small runs starve behind the heavy batch, while
fair-share (per-run core·second deficit) and DAGPS-style priorities
(least unscheduled work across runs, longest remaining subgraph within a
run) let them through.

Reported per policy at K = 1/8/64:

- **aggregate makespan** — virtual seconds until the last run finishes;
- **per-workflow slowdown** — each run's response time (admission →
  completion, queueing included) divided by its isolated makespan under
  the same seed; p50/p99/mean over the K runs.

Gates:

- fair-share and DAGPS both beat FIFO on p99 slowdown at K=8 and K=64;
- their aggregate makespan stays within 5% of FIFO (or better) — the
  fairness is not bought with cluster-wide throughput;
- every run succeeds under every policy, and capacity is never
  oversubscribed (asserted inside the scheduler's placement path).

Everything is seed-deterministic, so the table reproduces exactly.
Results land in ``benchmarks/results/ext_cluster.txt`` and are serialized
to ``BENCH_cluster.json`` at the repo root (a CI artifact).
"""

import json
from pathlib import Path

import numpy as np
import pytest

from figutil import emit
from repro.core import IReS
from repro.engines.base import PerfModel
from repro.execution.cluster import POLICIES, ClusterScheduler
from repro.execution.parallel import ParallelSimulator
from repro.scenarios import setup_relational_analytics
from repro.workflows.pegasus import generate, synthetic_library

REPO_ROOT = Path(__file__).resolve().parent.parent

CONCURRENCIES = (1, 8, 64)
#: p99 gate applies at these K (at K=1 the policies are indistinguishable)
GATED = (8, 64)
MAKESPAN_SLACK = 1.05


def _platform():
    """One platform hosting both workload families.

    Montage runs on synthetic engines with per-algorithm profiles (so the
    simulator can execute every planned step); the relational scenario
    uses the stock PostgreSQL/MemSQL/SparkSQL engines.
    """
    ires = IReS()
    make_rel = setup_relational_analytics(ires)
    wf_big = generate("Montage", 40, seed=3)
    wf_small = generate("Montage", 8, seed=5)
    algs = sorted({
        op.algorithm
        for wf in (wf_big, wf_small)
        for op in wf.operators.values()
    })
    for j in range(3):
        ires.cloud.add_engine(
            f"engine{j}",
            profiles={alg: PerfModel(fixed=0.4 + 0.3 * j, per_unit=1e-9)
                      for alg in algs})
    for op in list(synthetic_library(wf_big, 3, seed=4)) + list(
            synthetic_library(wf_small, 3, seed=6)):
        if op.name not in {o.name for o in ires.library}:
            ires.register_operator(op)
    plans = {
        "montage-40": ires.plan(wf_big),
        "montage-8": ires.plan(wf_small),
        "relational": ires.plan(make_rel(0.5)),
    }
    return ires, plans


def _mix(plans: dict, k: int) -> list:
    """The admission order for a K-run burst: heavy batch first.

    A quarter of the burst is wide Montage-40 pipelines admitted up
    front; the rest alternates small Montage-8 and relational runs
    behind them — the arrival shape that exposes FIFO head-of-line
    starvation.
    """
    n_big = max(1, k // 4)
    smalls = [plans["montage-8"], plans["relational"]]
    return [plans["montage-40"]] * n_big + [
        smalls[i % 2] for i in range(k - n_big)]


@pytest.fixture(scope="module")
def contention_results():
    """Drive every (K, policy) burst; returns the result matrix."""
    ires, plans = _platform()
    results = {}
    for k in CONCURRENCIES:
        mix = _mix(plans, k)
        # isolated baseline: same plan, same per-run seed, empty cluster —
        # identical RNG stream, so the contended run differs only by
        # queueing/packing, never by durations
        baselines = [
            ParallelSimulator(ires.cloud, seed=i,
                              charge_clock=False).simulate(mix[i]).makespan
            for i in range(k)
        ]
        for policy in POLICIES:
            loop = ClusterScheduler(
                ires.cloud, policy=policy,
                cluster=ires.cloud.cluster.clone(), seed=0)
            runs = [
                loop.submit(mix[i], seed=i, run_id=f"{policy}-{k}-{i}")
                for i in range(k)
            ]
            loop.run_until_idle()
            assert all(r.report is not None for r in runs)
            assert all(r.report.succeeded for r in runs), (
                f"{policy} K={k}: "
                f"{[f.error for r in runs for f in r.report.failures][:3]}")
            slowdowns = [
                r.report.makespan / b for r, b in zip(runs, baselines)]
            snapshot = loop.snapshot()
            assert snapshot["stepsPlaced"] == sum(
                len(r.report.schedule) for r in runs)
            results[(k, policy)] = {
                "aggregateMakespan": max(r.finished_at for r in runs),
                "slowdownP50": float(np.percentile(slowdowns, 50)),
                "slowdownP99": float(np.percentile(slowdowns, 99)),
                "slowdownMean": float(np.mean(slowdowns)),
                "peakRunningSteps": snapshot["peakRunningSteps"],
                "peakCoresUsed": snapshot["peakCoresUsed"],
                "runs": k,
            }
    return results


def test_policies_beat_fifo_and_emit(contention_results):
    """The headline table + the BENCH_cluster.json gates."""
    rows = []
    for k in CONCURRENCIES:
        for policy in POLICIES:
            r = contention_results[(k, policy)]
            rows.append([
                k, policy, r["aggregateMakespan"], r["slowdownP50"],
                r["slowdownP99"], r["slowdownMean"], r["peakCoresUsed"],
            ])
    emit(
        "ext_cluster",
        "Shared-cluster scheduling: K concurrent Montage/relational runs",
        ["K", "policy", "agg makespan", "slow p50", "slow p99",
         "slow mean", "peak cores"],
        rows,
        widths=[4, 8, 14, 10, 10, 10, 12],
        note="slowdown = contended response / isolated makespan (same "
             "seed); heavy Montage-40 batch admitted ahead of small runs",
    )

    gates = {}
    for k in GATED:
        fifo = contention_results[(k, "fifo")]
        for policy in ("fair", "dagps"):
            r = contention_results[(k, policy)]
            gates[f"{policy}_beats_fifo_p99_at_{k}"] = (
                r["slowdownP99"] < fifo["slowdownP99"])
            gates[f"{policy}_makespan_within_5pct_at_{k}"] = (
                r["aggregateMakespan"]
                <= MAKESPAN_SLACK * fifo["aggregateMakespan"])

    payload = {
        "bench": "extension_cluster",
        "concurrencies": list(CONCURRENCIES),
        "policies": list(POLICIES),
        "results": {
            f"{policy}@{k}": contention_results[(k, policy)]
            for k in CONCURRENCIES for policy in POLICIES
        },
        "gates": gates,
    }
    (REPO_ROOT / "BENCH_cluster.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")

    for name, passed in gates.items():
        assert passed, f"gate failed: {name}"


def test_contended_vs_isolated_sanity(contention_results, benchmark):
    """Contention is real: K=8 aggregate far exceeds one isolated run.

    Also times one full 8-run FIFO burst (admission to idle) so the
    scheduler's own overhead is tracked run-to-run.
    """
    fifo8 = contention_results[(8, "fifo")]
    fifo1 = contention_results[(1, "fifo")]
    assert fifo8["aggregateMakespan"] > 2 * fifo1["aggregateMakespan"]

    ires, plans = _platform()
    mix = _mix(plans, 8)

    def burst():
        loop = ClusterScheduler(
            ires.cloud, policy="fifo",
            cluster=ires.cloud.cluster.clone(), seed=0)
        for i in range(8):
            loop.submit(mix[i], seed=i)
        loop.run_until_idle()

    benchmark(burst)
