"""MuSQLE Figure 4 — multi-engine SQL optimization time vs query size.

Paper's shape: optimal plans for 2–7-table queries over three engines are
found within seconds, with the majority of optimization time spent in the
external estimation APIs (EXPLAIN / statistics injection), not in the plan
enumeration itself.
"""

import time
from collections import defaultdict

import pytest

from figutil import emit
from repro.musqle import ALL_QUERIES, MuSQLE, build_default_deployment
from repro.musqle.queries import query_tables


@pytest.fixture(scope="module")
def series():
    deployment = build_default_deployment(scale_factor=1.0, seed=4)
    musqle = MuSQLE(deployment)
    by_size = defaultdict(list)
    for sql in ALL_QUERIES:
        _, stats = musqle.optimize(sql)
        musqle.cleanup()
        by_size[len(query_tables(sql))].append(stats)
    rows = []
    for n_tables in sorted(by_size):
        group = by_size[n_tables]
        mean = lambda attr: sum(getattr(s, attr) for s in group) / len(group)
        rows.append([
            n_tables,
            1000 * mean("total_seconds"),
            1000 * mean("enumeration_seconds"),
            1000 * mean("explain_seconds"),
            1000 * mean("inject_seconds"),
            sum(s.csg_cmp_pairs for s in group) / len(group),
        ])
    return rows


def test_musqle_fig4_optimization_time(benchmark, series):
    emit(
        "musqle_fig4_opt_time",
        "MuSQLE Fig 4: optimization time (ms) vs #tables (3 engines)",
        ["tables", "total_ms", "enum_ms", "explain_ms", "inject_ms", "pairs"],
        series, widths=[8, 11, 10, 12, 11, 8],
    )
    # every query optimizes within the paper's 6-second bound (we are far
    # under it: in-process APIs instead of networked engines)
    for row in series:
        assert row[1] < 6000.0
    # optimization time grows with query size
    assert series[-1][1] > series[0][1]

    deployment = build_default_deployment(scale_factor=1.0, seed=5)
    musqle = MuSQLE(deployment)
    sql = ALL_QUERIES[6]  # 4-table join

    def optimize_once():
        musqle.optimize(sql)
        musqle.cleanup()

    benchmark(optimize_once)
