"""Ablation — per-format dpTable entries vs a single best entry per dataset.

Algorithm 1 keeps the best plan *per dataset format/location*; a simplified
planner that keeps only the single cheapest entry per dataset can commit to
an upstream winner whose format is expensive to convert downstream.  With a
slow interconnect the full dpTable finds the cheaper all-distributed plan
while the single-entry DP gets locked into the centralized upstream + an
expensive move.
"""

import pytest

from figutil import emit
from repro.core import IReS, Planner
from repro.core.estimators import OracleEstimator
from repro.engines import build_default_cloud
from repro.scenarios import setup_text_analytics

#: 2 MB/s interconnect makes mid-workflow format conversions expensive
SLOW_BANDWIDTH = 2e6


def build(single_entry: bool):
    cloud = build_default_cloud()
    cloud.bandwidth = SLOW_BANDWIDTH
    ires = IReS(cloud=cloud)
    make = setup_text_analytics(ires)
    planner = Planner(
        ires.library, OracleEstimator(cloud), single_entry_dp=single_entry
    )
    return planner, make


@pytest.fixture(scope="module")
def series():
    full_planner, make = build(single_entry=False)
    single_planner, _ = build(single_entry=True)
    rows = []
    for docs in (2e4, 2.5e4, 3e4, 3.5e4, 5e4, 1e5):
        wf = make(docs)
        full = full_planner.plan(wf)
        single = single_planner.plan(make(docs))
        rows.append([
            f"{docs:.0f}", full.cost, single.cost,
            100.0 * (single.cost - full.cost) / full.cost,
            "+".join(sorted(full.engines_used())),
            "+".join(sorted(single.engines_used())),
        ])
    return rows


def test_ablation_dptable(benchmark, series):
    emit(
        "ablation_dptable",
        "Ablation: per-format dpTable vs single-entry DP (slow interconnect)",
        ["docs", "full_dp", "single_dp", "loss_%", "full_plan", "single_plan"],
        series, widths=[9, 10, 11, 9, 16, 16],
    )
    # the full dpTable is never worse ...
    for row in series:
        assert row[1] <= row[2] + 1e-9
    # ... and strictly better somewhere (the hybrid-plan win of Fig 12)
    assert any(row[3] > 1.0 for row in series)

    planner, make = build(single_entry=False)
    wf = make(5e4)
    benchmark(lambda: planner.plan(wf))
