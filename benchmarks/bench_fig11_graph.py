"""Figure 11 — graph analytics (Pagerank) vs input size, single- vs multi-engine.

Paper's shape: the centralized Java implementation wins small graphs but
fails past single-node memory; Hama wins medium graphs and fails past
aggregate memory; Spark scales to the largest inputs.  IReS tracks the
best engine at every size, plus a small planning/launch overhead.
"""

import math

import pytest

from figutil import INF, emit
from repro.core import IReS, PlanningError
from repro.scenarios import setup_graph_analytics

EDGE_SIZES = [1e4, 1e5, 1e6, 1e7, 1e8]
ENGINES = ("Java", "Hama", "Spark")
#: simulated YARN container-launch overhead the paper observes ("a couple
#: of seconds") on top of the chosen plan
LAUNCH_OVERHEAD = 2.0


def compute_series():
    ires = IReS()
    make = setup_graph_analytics(ires)
    rows = []
    for edges in EDGE_SIZES:
        single = {}
        for engine in ENGINES:
            try:
                single[engine] = ires.planner.plan(
                    make(edges), available_engines={engine}).cost
            except PlanningError:
                single[engine] = INF
        plan = ires.plan(make(edges))
        choice = plan.steps[-1].engine
        rows.append([
            f"{edges:.0e}", single["Java"], single["Hama"], single["Spark"],
            plan.cost + LAUNCH_OVERHEAD, choice,
        ])
    return rows


@pytest.fixture(scope="module")
def series():
    return compute_series()


def test_fig11_graph_analytics(benchmark, series):
    emit(
        "fig11_graph", "Figure 11: Pagerank execution time (s) vs edges",
        ["edges", "Java", "Hama", "Spark", "IReS", "choice"],
        series,
        note=f"(IReS includes ~{LAUNCH_OVERHEAD:.0f}s planning+YARN overhead)",
    )
    by_size = {row[0]: row for row in series}
    # paper shape: Java wins small, Hama medium, Spark large
    assert by_size["1e+04"][5] == "Java"
    assert by_size["1e+06"][5] == "Java"
    assert by_size["1e+07"][5] == "Hama"
    assert by_size["1e+08"][5] == "Spark"
    # memory cliffs: Java and Hama fail at 1e8 edges
    assert by_size["1e+08"][1] == INF
    assert by_size["1e+08"][2] == INF
    # IReS tracks the best single engine within the launch overhead
    for row in series:
        best = min(v for v in row[1:4] if v != INF)
        assert row[4] <= best + LAUNCH_OVERHEAD + 1e-9

    # the benchmarked unit: planning one graph workflow
    ires = IReS()
    make = setup_graph_analytics(ires)
    wf = make(1e6)
    benchmark(lambda: ires.plan(wf))
