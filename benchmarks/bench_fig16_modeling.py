"""Figure 16 — operator-model estimation error vs number of executions.

(a) Normal operation: relative execution-time estimation error for
    Wordcount/MapReduce and Pagerank/Java drops below 30% after ~50 runs
    and keeps improving.
(b) Infrastructure change: after 100 runs the HDDs become SSDs; the error
    temporarily degrades (to ~50% in the paper) but stays far below the
    ~100% of discarding the models, and re-converges with more runs.
"""

import numpy as np
import pytest

from figutil import emit
from repro.core import Modeler, ModelRefiner, ProfileSpec, Profiler
from repro.engines import Resources, build_default_cloud
from repro.models import fast_model_zoo

WORDCOUNT = ProfileSpec(
    "wordcount", "MapReduce",
    counts=[1e5, 5e5, 1e6, 5e6, 1e7], bytes_per_item=1e3,
    resources=[Resources(c, m) for c in (4, 8, 16, 32) for m in (8, 16, 32)],
)
PAGERANK = ProfileSpec(
    "pagerank", "Java",
    counts=[1e4, 1e5, 5e5, 1e6, 5e6], bytes_per_item=40,
    params={"iterations": [5, 10, 20]},
    resources=[Resources(4, 8)],
)


def refinement_errors(spec, n_runs, seed=0, ssd_at=None):
    """Run the §4.3 protocol; returns the per-run relative errors."""
    cloud = build_default_cloud(seed=seed)
    modeler = Modeler(cloud.collector, zoo=fast_model_zoo())
    refiner = ModelRefiner(modeler, refit_every=5)
    profiler = Profiler(cloud)
    engine = cloud.engine(spec.engine)
    rng = np.random.default_rng(seed)
    param_names = sorted(spec.params)
    errors = []
    for run in range(1, n_runs + 1):
        if ssd_at is not None and run == ssd_at:
            cloud.upgrade_disks_to_ssd()
        count = spec.counts[rng.integers(len(spec.counts))]
        params = {n: spec.params[n][rng.integers(len(spec.params[n]))]
                  for n in param_names}
        resources = spec.resources[rng.integers(len(spec.resources))]
        features = {"input_size": count * spec.bytes_per_item,
                    "input_count": count,
                    "cores": float(resources.cores),
                    "memory_gb": resources.memory_gb}
        features.update({f"param_{k}": float(v) for k, v in params.items()})
        predicted = modeler.estimate(spec.algorithm, spec.engine, features)
        record = profiler.profile_point(engine, spec, count, params, resources)
        if record is None:
            errors.append(np.nan)
            continue
        if predicted is None:
            errors.append(1.0)  # no knowledge yet: ~100% error
        else:
            errors.append(abs(predicted - record.exec_time) / record.exec_time)
        refiner.observe(record)
    return np.array(errors)


def window_mean(errors, end, width=15):
    window = errors[max(end - width, 0):end]
    window = window[~np.isnan(window)]
    return float(window.mean()) if len(window) else float("nan")


@pytest.fixture(scope="module")
def normal_series():
    return {
        "Wordcount MapReduce": refinement_errors(WORDCOUNT, 100, seed=1),
        "Pagerank Java": refinement_errors(PAGERANK, 100, seed=2),
    }


@pytest.fixture(scope="module")
def upgrade_series():
    return refinement_errors(WORDCOUNT, 200, seed=3, ssd_at=101)


def test_fig16a_error_converges(benchmark, normal_series):
    checkpoints = [10, 20, 30, 50, 70, 100]
    rows = []
    for name, errors in normal_series.items():
        rows.append([name] + [window_mean(errors, c) for c in checkpoints])
    emit(
        "fig16a_modeling",
        "Figure 16a: relative estimation error vs #executions",
        ["operator"] + [str(c) for c in checkpoints],
        rows, widths=[22, 8, 8, 8, 8, 8, 8],
    )
    for name, errors in normal_series.items():
        late = window_mean(errors, 60)
        assert late < 0.30, (name, late)  # "drops below 30% after ~50 runs"
        # accuracy keeps improving vs the early phase
        assert window_mean(errors, 100) < window_mean(errors, 20)

    benchmark(lambda: refinement_errors(WORDCOUNT, 12, seed=9))


def test_fig16b_infrastructure_change(benchmark, upgrade_series):
    errors = upgrade_series
    benchmark(lambda: window_mean(errors, 200))
    checkpoints = [60, 100, 115, 140, 200]
    rows = [["Wordcount MapReduce"]
            + [window_mean(errors, c) for c in checkpoints]]
    emit(
        "fig16b_infra_change",
        "Figure 16b: estimation error with an HDD->SSD swap after run 100",
        ["operator"] + [str(c) for c in checkpoints],
        rows, widths=[22, 8, 8, 8, 8, 8],
    )
    before = window_mean(errors, 100)
    right_after = window_mean(errors, 115)
    recovered = window_mean(errors, 200)
    assert before < 0.30
    assert right_after > before          # temporal degradation
    assert right_after < 1.00            # still beats starting from scratch
    assert recovered < right_after       # models regain accuracy
