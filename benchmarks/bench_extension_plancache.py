"""Extension — plan cache: cold vs warm vs invalidated planning.

The plan cache memoizes finished plans keyed by a digest of (workflow,
materialized results, available engines, policy, planner knobs, library +
model epochs).  This benchmark measures, on the Figure 14 headline workload
(Montage, 1000 nodes, 8 engines per stage):

- **cold**: first ``plan()`` — full DP;
- **warm**: identical resubmission — digest + lookup only (gate: ≥ 10×
  faster than cold, and the *same plan object* comes back);
- **invalidated**: a library-epoch bump (adding a near-free implementation
  of the target's producer stage) must restore cold-path behaviour — the
  DP reruns and picks the new operator, proving no stale plan is served;
- **re-warm**: the next resubmission hits again under the new epoch;
- **replan (cold/warm)**: the fault-tolerance shape — same workflow with a
  restricted engine set — keyed separately and warm on repetition.

Results land in ``benchmarks/results/ext_plancache.txt`` (the run_all key
metric) and are serialized to ``BENCH_planner.json`` at the repo root.
"""

import json
import time
from pathlib import Path

import pytest

from figutil import emit
from repro.core import MaterializedOperator, Planner
from repro.core.plancache import PlanCache
from repro.core.planner import MetadataCostEstimator
from repro.workflows import generate, synthetic_library

REPO_ROOT = Path(__file__).resolve().parent.parent
N_NODES = 1000
N_ENGINES = 8
#: acceptance gate: warm plan() must beat cold by at least this factor
SPEEDUP_FLOOR = 10.0


def _shortcut_operator(workflow) -> MaterializedOperator:
    """A near-free implementation of the stage producing the target.

    Adding it bumps the library epoch; a correctly invalidated cache replans
    and must pick it (its cost undercuts every generated implementation).
    """
    producer = workflow.operators[workflow.producer[workflow.target]]
    arity = max(producer.n_inputs, 1)
    props = {
        "Constraints.OpSpecification.Algorithm.name": producer.algorithm,
        "Constraints.Engine": "engine0",
        "Constraints.Input.number": arity,
        "Constraints.Output.number": 1,
        "Constraints.Output0.Engine.FS": "store0",
        "Constraints.Output0.type": "data",
        "Optimization.execTime": 0.001,
        "Optimization.cost": 0.001,
    }
    for i in range(arity):
        props[f"Constraints.Input{i}.Engine.FS"] = "store0"
        props[f"Constraints.Input{i}.type"] = "data"
    return MaterializedOperator(
        f"{producer.algorithm}_k{arity}_shortcut", props)


@pytest.fixture(scope="module")
def timings():
    workflow = generate("Montage", N_NODES, seed=1)
    library = synthetic_library(workflow, N_ENGINES, seed=2)
    cache = PlanCache()
    cache.attach_library(library)
    planner = Planner(library, MetadataCostEstimator(), plan_cache=cache)

    start = time.perf_counter()
    cold_plan = planner.plan(workflow)
    cold = time.perf_counter() - start
    assert not planner.last_plan_cached

    start = time.perf_counter()
    warm_plan = planner.plan(workflow)
    warm = time.perf_counter() - start
    assert planner.last_plan_cached
    assert warm_plan is cold_plan  # identical, not merely equivalent

    # replanning shape: restricted engine set is a distinct key
    engines = {f"engine{j}" for j in range(1, N_ENGINES)}
    start = time.perf_counter()
    replan_cold_plan = planner.plan(workflow, available_engines=engines)
    replan_cold = time.perf_counter() - start
    assert not planner.last_plan_cached
    start = time.perf_counter()
    replan_warm_plan = planner.plan(workflow, available_engines=engines)
    replan_warm = time.perf_counter() - start
    assert planner.last_plan_cached
    assert replan_warm_plan is replan_cold_plan

    # library-epoch bump: adding an operator must drop every cached plan
    # AND the fresh DP must see the new candidate (no stale plans)
    shortcut = _shortcut_operator(workflow)
    library.add(shortcut)
    start = time.perf_counter()
    new_plan = planner.plan(workflow)
    invalidated = time.perf_counter() - start
    assert not planner.last_plan_cached
    assert any(step.operator.name == shortcut.name for step in new_plan.steps)
    assert new_plan.cost < cold_plan.cost

    start = time.perf_counter()
    rewarm_plan = planner.plan(workflow)
    rewarm = time.perf_counter() - start
    assert planner.last_plan_cached
    assert rewarm_plan is new_plan

    return {
        "cold": cold, "warm": warm,
        "replan_cold": replan_cold, "replan_warm": replan_warm,
        "invalidated": invalidated, "rewarm": rewarm,
        "cache": cache.stats(),
        "planner": planner, "workflow": workflow,
    }


def test_plancache_speedup(benchmark, timings):
    t = timings
    rows = [
        ["cold (full DP)", t["cold"] * 1e3, 1.0],
        ["warm (cache hit)", t["warm"] * 1e3, t["cold"] / t["warm"]],
        ["replan cold (7 engines)", t["replan_cold"] * 1e3,
         t["cold"] / t["replan_cold"]],
        ["replan warm", t["replan_warm"] * 1e3,
         t["cold"] / t["replan_warm"]],
        ["invalidated (epoch bump)", t["invalidated"] * 1e3,
         t["cold"] / t["invalidated"]],
        ["re-warm (new epoch)", t["rewarm"] * 1e3, t["cold"] / t["rewarm"]],
    ]
    emit(
        "ext_plancache",
        f"Extension: plan cache on Montage-{N_NODES}, {N_ENGINES} engines",
        ["phase", "wall_ms", "speedup_vs_cold"],
        rows, widths=[28, 12, 17],
        note=f"(gate: warm ≥ {SPEEDUP_FLOOR:.0f}× cold; epoch bump must "
             "rerun the DP and adopt the cheaper operator)",
    )
    payload = {
        "workload": f"Montage-{N_NODES}, {N_ENGINES} engines",
        "cold_seconds": round(t["cold"], 6),
        "warm_seconds": round(t["warm"], 6),
        "replan_cold_seconds": round(t["replan_cold"], 6),
        "replan_warm_seconds": round(t["replan_warm"], 6),
        "invalidated_seconds": round(t["invalidated"], 6),
        "rewarm_seconds": round(t["rewarm"], 6),
        "speedup_warm": round(t["cold"] / t["warm"], 2),
        "speedup_replan_warm": round(t["cold"] / t["replan_warm"], 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "cache": t["cache"],
    }
    (REPO_ROOT / "BENCH_planner.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")

    assert t["cold"] >= SPEEDUP_FLOOR * t["warm"], (t["cold"], t["warm"])
    assert t["replan_cold"] >= SPEEDUP_FLOOR * t["replan_warm"]
    # the epoch bump restored cold-path behaviour: a real DP pass, not a hit
    assert t["invalidated"] > t["warm"]

    planner, workflow = timings["planner"], timings["workflow"]
    benchmark(lambda: planner.plan(workflow))
