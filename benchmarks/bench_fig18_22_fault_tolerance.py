"""Table 1 + Figures 18–22 — the fault-tolerance evaluation.

The HelloWorld chain (Table 1 lists each operator's candidate engines) is
executed while the engine chosen for HelloWorld1/2/3 is killed the moment
that operator starts.  Compared strategies:

- ``IResReplan`` — replans the remainder, reusing materialized intermediates;
- ``TrivialReplan`` — discards intermediates, reschedules the whole workflow;
- ``SubOptPlan``  — no failure, but the killed engine was unavailable from
  the start (a sub-optimal but failure-free plan).

Paper's shape: IResReplan consistently beats TrivialReplan; the later the
failure, the larger the gain; replanning stays in the millisecond range; and
late-failure IResReplan even beats the failure-free SubOptPlan.
"""

import pytest

from figutil import emit
from repro.core import IReS
from repro.execution import IRES_REPLAN, TRIVIAL_REPLAN
from repro.scenarios import HELLOWORLD_ENGINES, setup_helloworld

VICTIM_OPERATORS = ("HelloWorld1", "HelloWorld2", "HelloWorld3")


def chosen_engine(victim: str) -> str:
    ires = IReS()
    make = setup_helloworld(ires)
    return ires.plan(make()).step_for_operator(victim).engine


def run_strategy(strategy: str, victim: str, engine: str):
    ires = IReS(strategy=strategy)
    make = setup_helloworld(ires)
    ires.fault_injector.kill_engine_at(engine, trigger_operator=victim)
    return ires.execute(make())


def run_suboptimal(engine: str):
    """No failure, but the (normally chosen) engine is down from the start."""
    ires = IReS()
    make = setup_helloworld(ires)
    ires.cloud.kill_engine(engine)
    return ires.execute(make())


@pytest.fixture(scope="module")
def series():
    out = {}
    for victim in VICTIM_OPERATORS:
        engine = chosen_engine(victim)
        out[victim] = {
            "engine": engine,
            IRES_REPLAN: run_strategy(IRES_REPLAN, victim, engine),
            TRIVIAL_REPLAN: run_strategy(TRIVIAL_REPLAN, victim, engine),
            "SubOptPlan": run_suboptimal(engine),
        }
    return out


def test_table1_operator_catalogue(benchmark):
    rows = [[op, ", ".join(engines)]
            for op, engines in HELLOWORLD_ENGINES.items()]
    emit("table1_helloworld", "Table 1: operators and available implementations",
         ["Operator", "Engines"], rows, widths=[14, 36])
    assert HELLOWORLD_ENGINES["HelloWorld2"] == (
        "Spark", "MLlib", "PostgreSQL", "Hive")

    ires = IReS()
    make = setup_helloworld(ires)
    benchmark(lambda: ires.plan(make()))


def test_fig19_optimal_plan(benchmark):
    ires = IReS()
    make = setup_helloworld(ires)
    plan = ires.plan(make())
    rows = [[s.abstract_name, s.engine] for s in plan.steps if not s.is_move]
    emit("fig19_optimal_plan", "Figure 19: optimal materialized HelloWorld plan",
         ["operator", "engine"], rows, widths=[14, 12])
    assert rows[0] == ["HelloWorld", "Python"]  # the only option in Table 1
    benchmark(lambda: ires.plan(make()))


def test_figs20_22_replanning(benchmark, series):
    rows = []
    for victim in VICTIM_OPERATORS:
        data = series[victim]
        rows.append([
            victim, data["engine"],
            data[IRES_REPLAN].sim_time,
            data[TRIVIAL_REPLAN].sim_time,
            data["SubOptPlan"].sim_time,
            data[IRES_REPLAN].replanning_seconds * 1000,
            data[TRIVIAL_REPLAN].replanning_seconds * 1000,
        ])
    emit(
        "figs20_22_fault_tolerance",
        "Figures 20-22: execution time (s) and replanning time (ms) per failure",
        ["failure", "engine", "IResReplan", "TrivialReplan", "SubOptPlan",
         "IRes_ms", "Trivial_ms"],
        rows, widths=[13, 12, 12, 15, 12, 10, 12],
    )
    gains = []
    for victim in VICTIM_OPERATORS:
        data = series[victim]
        ires_t = data[IRES_REPLAN].sim_time
        trivial_t = data[TRIVIAL_REPLAN].sim_time
        # IResReplan consistently outperforms TrivialReplan
        assert ires_t < trivial_t
        gains.append(trivial_t - ires_t)
        # replanning overhead is in the millisecond range
        assert data[IRES_REPLAN].replanning_seconds < 0.1
        assert data[TRIVIAL_REPLAN].replanning_seconds < 0.1
        # exactly one replan happened under both strategies
        assert data[IRES_REPLAN].replans == 1
        assert data[TRIVIAL_REPLAN].replans == 1
    # the later the failure, the greater IResReplan's gain over Trivial
    assert gains[-1] >= gains[0]
    # a late failure with IResReplan still beats the failure-free
    # sub-optimal plan (the paper's closing observation)
    late = series["HelloWorld3"]
    assert late[IRES_REPLAN].sim_time <= late["SubOptPlan"].sim_time * 1.25

    engine = series["HelloWorld2"]["engine"]
    benchmark(lambda: run_strategy(IRES_REPLAN, "HelloWorld2", engine).sim_time)
