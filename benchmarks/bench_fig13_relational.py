"""Figure 13 — relational analytics (3 TPC-H queries) vs scale.

Paper's shape: PostgreSQL performs acceptably only while data transfer is
small; MemSQL fails past ~2 GB (intermediates exceed cluster memory); IReS
runs each query in the engine where its tables reside (q1@PostgreSQL,
q2@MemSQL, q3@SparkSQL), staying uniformly good and pulling ahead at 50 GB.
"""

import pytest

from figutil import INF, emit
from repro.core import IReS, PlanningError
from repro.scenarios import setup_relational_analytics

SCALES_GB = [1, 5, 10, 20, 50]
ENGINES = ("PostgreSQL", "MemSQL", "SparkSQL")
LAUNCH_OVERHEAD = 2.0


def compute_series():
    ires = IReS()
    make = setup_relational_analytics(ires)
    rows = []
    for scale in SCALES_GB:
        single = {}
        for engine in ENGINES:
            try:
                single[engine] = ires.planner.plan(
                    make(scale), available_engines={engine}).cost
            except PlanningError:
                single[engine] = INF
        plan = ires.plan(make(scale))
        placement = ",".join(
            s.engine[:2] for s in plan.steps if not s.is_move
        )
        rows.append([
            scale, single["PostgreSQL"], single["MemSQL"], single["SparkSQL"],
            plan.cost + LAUNCH_OVERHEAD, placement,
        ])
    return rows


@pytest.fixture(scope="module")
def series():
    return compute_series()


def test_fig13_relational_analytics(benchmark, series):
    emit(
        "fig13_relational",
        "Figure 13: relational workflow execution time (s) vs TPC-H scale (GB)",
        ["GB", "PostgreSQL", "MemSQL", "SparkSQL", "IReS", "q1,q2,q3"],
        series, widths=[6, 12, 12, 12, 10, 12],
    )
    by_scale = {row[0]: row for row in series}
    # MemSQL single-engine OOMs past ~2 GB
    assert by_scale[1][2] != INF
    for scale in (5, 10, 20, 50):
        assert by_scale[scale][2] == INF
    # at scale, each query runs where its tables reside
    for scale in (10, 20, 50):
        assert by_scale[scale][5] == "Po,Me,Sp"
    # IReS stays at or under every feasible single-engine plan
    for row in series:
        best = min(v for v in row[1:4] if v != INF)
        assert row[4] <= best + LAUNCH_OVERHEAD + 1e-9
    # PostgreSQL's transfer cost grows much faster than IReS's plan
    assert by_scale[50][1] > 2.0 * by_scale[50][4]

    ires = IReS()
    make = setup_relational_analytics(ires)
    wf = make(20)
    benchmark(lambda: ires.plan(wf))
