"""Ablation — log-space model fitting vs raw-space fitting.

The modeler fits both features and the target in log space because operator
cost surfaces are multiplicative (t ≈ size/cores · const).  This ablation
trains the zoo both ways on identical profiling samples and compares the
*relative* estimation error — the metric the Figure 16 experiments use.
"""

import numpy as np
import pytest

from figutil import emit
from repro.core import Modeler, ProfileSpec, Profiler
from repro.engines import Resources, Workload, build_default_cloud
from repro.models import fast_model_zoo

SPEC = ProfileSpec(
    "wordcount", "MapReduce",
    counts=[1e5, 3e5, 1e6, 3e6, 1e7], bytes_per_item=1e3,
    resources=[Resources(c, m) for c in (4, 8, 16, 32) for m in (8, 16, 32)],
)


def relative_errors(modeler, cloud, n=80, seed=11):
    rng = np.random.default_rng(seed)
    engine = cloud.engine("MapReduce")
    grid = SPEC.grid()
    errors = []
    for _ in range(n):
        count, params, res = grid[int(rng.integers(len(grid)))]
        truth = engine.true_seconds(
            "wordcount", Workload.of_count(count, 1e3, **params), res)
        estimate = modeler.estimate("wordcount", "MapReduce", {
            "input_size": count * 1e3, "input_count": count,
            "cores": float(res.cores), "memory_gb": res.memory_gb,
        })
        errors.append(abs(estimate - truth) / truth)
    return np.asarray(errors)


@pytest.fixture(scope="module")
def series():
    cloud = build_default_cloud(seed=8)
    Profiler(cloud).sample_random_setups(SPEC, n_runs=40, seed=8)
    rows = []
    models = {}
    for log_space in (True, False):
        modeler = Modeler(cloud.collector, zoo=fast_model_zoo(),
                          log_space=log_space)
        modeler.train("wordcount", "MapReduce")
        errors = relative_errors(modeler, cloud)
        models[log_space] = modeler.get("wordcount", "MapReduce").model_name
        rows.append([
            "log-space" if log_space else "raw-space",
            models[log_space],
            float(np.mean(errors)), float(np.median(errors)),
            float(np.percentile(errors, 90)),
        ])
    return rows


def test_ablation_logspace(benchmark, series):
    emit(
        "ablation_logspace",
        "Ablation: relative estimation error, log-space vs raw-space models",
        ["fitting", "winner", "mean", "median", "p90"],
        series, widths=[11, 22, 9, 9, 9],
    )
    log_row, raw_row = series
    # log-space fitting is what keeps *relative* error low across scales
    assert log_row[2] < raw_row[2]
    assert log_row[2] < 0.30

    cloud = build_default_cloud(seed=9)
    Profiler(cloud).sample_random_setups(SPEC, n_runs=20, seed=9)
    modeler = Modeler(cloud.collector, zoo=fast_model_zoo())
    benchmark(lambda: modeler.train("wordcount", "MapReduce"))
