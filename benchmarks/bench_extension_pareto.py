"""Extension — Pareto-frontier planning (the §2.2.3 'currently investigating').

Not a paper figure: this evaluates the multi-objective planner the paper
names as future work.  We measure (a) the frontier the planner finds on the
text-analytics workflow across scales, and (b) the overhead of frontier
planning relative to single-metric planning on Pegasus graphs.
"""

import time

import pytest

from figutil import emit
from repro.core import IReS, Planner
from repro.core.estimators import OracleEstimator
from repro.core.pareto import ParetoPlanner, dominates
from repro.core.planner import MetadataCostEstimator
from repro.scenarios import setup_text_analytics
from repro.workflows import generate, synthetic_library


@pytest.fixture(scope="module")
def frontier_series():
    ires = IReS()
    make = setup_text_analytics(ires)
    estimator = OracleEstimator(ires.cloud)
    planner = ParetoPlanner(ires.library, estimator)
    rows = []
    for docs in (1e4, 2.5e4, 1e5):
        frontier = planner.plan_frontier(make(docs))
        frontier.sort(key=lambda p: p.metrics["execTime"])
        for plan in frontier:
            rows.append([
                f"{docs:.0f}", plan.metrics["execTime"], plan.metrics["cost"],
                "+".join(sorted(plan.engines_used())),
            ])
    return rows


@pytest.fixture(scope="module")
def overhead_series():
    rows = []
    for nodes in (30, 100, 300):
        wf = generate("Epigenomics", nodes, seed=6)
        lib = synthetic_library(wf, 4, seed=7)
        est = MetadataCostEstimator()
        t0 = time.perf_counter()
        Planner(lib, est).plan(wf)
        scalar = time.perf_counter() - t0
        t0 = time.perf_counter()
        frontier = ParetoPlanner(lib, est, max_frontier=8).plan_frontier(wf)
        pareto = time.perf_counter() - t0
        rows.append([nodes, 1000 * scalar, 1000 * pareto,
                     pareto / max(scalar, 1e-9), len(frontier)])
    return rows


def test_extension_pareto_frontier(benchmark, frontier_series):
    emit(
        "extension_pareto_frontier",
        "Extension: Pareto time/cost frontier of the text workflow",
        ["docs", "time_s", "cost", "plan"],
        frontier_series, widths=[9, 10, 12, 16],
    )
    # frontier points are mutually non-dominated within each scale
    by_scale = {}
    for row in frontier_series:
        by_scale.setdefault(row[0], []).append((row[1], row[2]))
    for points in by_scale.values():
        for a in points:
            for b in points:
                assert a == b or not dominates(a, b)
        assert len(points) >= 2  # a genuine trade-off exists

    ires = IReS()
    make = setup_text_analytics(ires)
    planner = ParetoPlanner(ires.library, OracleEstimator(ires.cloud))
    wf = make(2.5e4)
    benchmark(lambda: planner.plan_frontier(wf))


def test_extension_pareto_overhead(benchmark, overhead_series):
    emit(
        "extension_pareto_overhead",
        "Extension: frontier planning overhead vs scalar planning (ms)",
        ["nodes", "scalar_ms", "pareto_ms", "ratio", "frontier"],
        overhead_series, widths=[8, 11, 11, 8, 10],
    )
    for row in overhead_series:
        # frontier planning stays within a small factor of scalar planning
        assert row[3] < 60.0
        assert row[4] >= 1

    wf = generate("Epigenomics", 100, seed=6)
    lib = synthetic_library(wf, 4, seed=7)
    planner = ParetoPlanner(lib, MetadataCostEstimator(), max_frontier=8)
    benchmark(lambda: planner.plan_frontier(wf))
