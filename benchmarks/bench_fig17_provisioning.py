"""Figure 17 — resource provisioning: execution time and cost vs input size.

Paper's shape, for Spark (MLlib) tf-idf on a 32-core / 54 GB cluster:
NSGA-II provisioning achieves execution times as low as the static
max-resources strategy while its execution cost (cores·GB·t) lies between
the min- and max-resources strategies, growing toward max as inputs scale.
"""

import pytest

from figutil import emit
from repro.core import ResourceProvisioner
from repro.engines import Resources, Workload, build_default_cloud

DOC_SIZES = [1e3, 1e4, 1e5, 1e6, 1e7]
MAX_CORES, MAX_MEM = 32, 54.0
MIN_CORES, MIN_MEM = 1, 1.0


def time_fn_for(cloud, docs):
    spark = cloud.engine("Spark")
    workload = Workload.of_count(docs, 1e3)

    def time_fn(cores, memory_gb):
        return spark.true_seconds(
            "TF_IDF", workload,
            Resources(cores=max(int(cores), 1), memory_gb=max(memory_gb, 0.5)))

    return time_fn


def compute_series():
    cloud = build_default_cloud()
    rows = []
    for docs in DOC_SIZES:
        time_fn = time_fn_for(cloud, docs)
        provisioner = ResourceProvisioner(
            max_cores=MAX_CORES, max_memory_gb=MAX_MEM,
            generations=30, population_size=24, seed=5)
        result = provisioner.provision(time_fn)
        t_min = time_fn(MIN_CORES, MIN_MEM)
        t_max = time_fn(MAX_CORES, MAX_MEM)
        rows.append([
            f"{docs:.0e}",
            t_min, t_max, result.est_time,
            MIN_CORES * MIN_MEM * t_min,
            MAX_CORES * MAX_MEM * t_max,
            result.est_cost,
            f"{result.resources.cores}c/{result.resources.memory_gb:.0f}g",
        ])
    return rows


@pytest.fixture(scope="module")
def series():
    return compute_series()


def test_fig17_resource_provisioning(benchmark, series):
    emit(
        "fig17_provisioning",
        "Figure 17: execution time (s) and cost (cores*GB*s) vs input size",
        ["docs", "t_min", "t_max", "t_IReS",
         "cost_min", "cost_max", "cost_IReS", "alloc"],
        series, widths=[8, 11, 9, 9, 12, 12, 12, 9],
    )
    for row in series:
        _, t_min, t_max, t_ires, c_min, c_max, c_ires, _ = row
        # IReS time tracks the max-resources strategy
        assert t_ires <= t_max * 1.2
        # and is far better than min resources at scale
        assert t_ires <= t_min
        # IReS cost lies between the two static strategies
        assert c_ires <= c_max * 1.05
    # cost approaches max-resources as the input scales
    ratio_small = series[0][6] / series[0][5]
    ratio_large = series[-1][6] / series[-1][5]
    assert ratio_large > ratio_small
    # allocation grows with input size
    first_cores = int(series[0][7].split("c")[0])
    last_cores = int(series[-1][7].split("c")[0])
    assert last_cores >= first_cores

    cloud = build_default_cloud()
    time_fn = time_fn_for(cloud, 1e5)
    provisioner = ResourceProvisioner(generations=10, population_size=16)
    benchmark(lambda: provisioner.provision(time_fn))
