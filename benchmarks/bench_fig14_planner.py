"""Figure 14 — planner optimization time vs workflow size, 5 Pegasus categories.

Paper's shape: near-linear growth in workflow nodes for every category;
Montage (denser connectivity, higher in/out-degrees) costs ~2× the others;
even 1000-node workflows optimize in under ~10 seconds with 8 engines.
"""

import time

import pytest

from figutil import emit
from repro.core import Planner
from repro.core.planner import MetadataCostEstimator
from repro.workflows import CATEGORIES, generate, synthetic_library

NODE_SIZES = [30, 100, 300, 1000]
ENGINE_COUNTS = (4, 8)


def plan_time(category: str, n_nodes: int, n_engines: int) -> float:
    workflow = generate(category, n_nodes, seed=1)
    library = synthetic_library(workflow, n_engines, seed=2)
    planner = Planner(library, MetadataCostEstimator())
    start = time.perf_counter()
    planner.plan(workflow)
    return time.perf_counter() - start


@pytest.fixture(scope="module")
def series():
    table = {}
    for m in ENGINE_COUNTS:
        for category in sorted(CATEGORIES):
            for n in NODE_SIZES:
                table[(m, category, n)] = plan_time(category, n, m)
    return table


def test_fig14_planner_scaling(benchmark, series):
    for m in ENGINE_COUNTS:
        rows = [
            [category] + [series[(m, category, n)] for n in NODE_SIZES]
            for category in sorted(CATEGORIES)
        ]
        emit(
            f"fig14_planner_{m}engines",
            f"Figure 14: optimization time (s) vs workflow nodes, {m} engines",
            ["category"] + [str(n) for n in NODE_SIZES],
            rows, widths=[14, 10, 10, 10, 10],
        )
    # <10 s even for 1000-node workflows (the paper's headline)
    for (m, category, n), seconds in series.items():
        assert seconds < 10.0, (m, category, n, seconds)
    # near-linear scaling in node count: 1000 nodes costs well under
    # (1000/100)^2 x the 100-node time
    for m in ENGINE_COUNTS:
        for category in sorted(CATEGORIES):
            t100 = series[(m, category, 100)]
            t1000 = series[(m, category, 1000)]
            assert t1000 < 40.0 * max(t100, 1e-4)
    # the densely-connected categories (Montage, CyberShake) are the most
    # expensive at the largest size — the paper's "Montage ≈ 2× the others"
    # observation generalized to connectivity, robust to wall-clock noise
    for m in ENGINE_COUNTS:
        connected = max(series[(m, "Montage", 1000)],
                        series[(m, "CyberShake", 1000)])
        pipelined = [series[(m, c, 1000)]
                     for c in ("Epigenomics", "Inspiral", "Sipht")]
        assert connected >= 0.8 * max(pipelined)

    benchmark(lambda: plan_time("Montage", 100, 4))
