"""Extension — execution service: concurrency, journal overhead, recovery.

Three gates over the durable asyncio service layer
(:mod:`repro.api.service` + :mod:`repro.execution.journal`):

- **concurrency**: a burst of helloworld-chain submissions through an
  8-worker service must genuinely overlap (peak active runs ≥ 8) with the
  queue bounded the whole time, every run succeeding;
- **journal overhead**: write-ahead journaling every state change (with
  per-record ``fsync``) must cost ≤ 5% of the p50 plan+execute wall
  latency of a single run, measured by the ``ires_journal_append_seconds``
  histogram (an A/B wall-clock diff drowns in model-refit noise);
- **crash recovery**: killing the scheduler after *every* possible step
  boundary (the deterministic sweep over "kill -9 at a random step"),
  recovery must complete every sampled run with **zero** re-executed
  finished steps.

Results land in ``benchmarks/results/ext_service.txt`` and are serialized
to ``BENCH_service.json`` at the repo root (a CI artifact).
"""

import asyncio
import json
import statistics
import time
from pathlib import Path

import pytest

from figutil import emit
from repro.core import IReS
from repro.execution.journal import journal_path, read_journal, recover
from repro.scenarios import setup_helloworld

REPO_ROOT = Path(__file__).resolve().parent.parent

WORKERS = 8
BURST = 24
QUEUE_LIMIT = 32
#: acceptance gate: journaling may cost at most this fraction of p50 latency
OVERHEAD_CEILING = 0.05
#: latency sample size per mode for the overhead comparison
LATENCY_RUNS = 9


def _platform(journal_dir=None) -> IReS:
    ires = IReS(journal_dir=journal_dir)
    make = setup_helloworld(ires)
    workflow = make()
    ires.workflows[workflow.name] = workflow
    return ires


def _percentile(samples, q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


@pytest.fixture(scope="module")
def service_burst(tmp_path_factory):
    """Push a burst through the service; returns the timing facts."""
    from repro.api.service import IResService

    journal_dir = tmp_path_factory.mktemp("service-journals")

    async def main():
        service = IResService(lambda: _platform(), workers=WORKERS,
                              queue_limit=QUEUE_LIMIT,
                              journal_dir=journal_dir)
        await service.start()
        start = time.perf_counter()
        recs = [service.submit("helloworld-chain", tenant=f"t{i % 4}")
                for i in range(BURST)]
        for rec in recs:
            await service.wait(rec.run_id, timeout=600)
        wall = time.perf_counter() - start
        stats = service.stats()
        await service.shutdown()
        return recs, wall, stats, service.peak_active

    recs, wall, stats, peak = asyncio.run(main())
    latencies = [rec.finished_at - rec.submitted_at for rec in recs]
    return {
        "recs": recs, "wall": wall, "stats": stats, "peak": peak,
        "latencies": latencies, "journal_dir": journal_dir,
    }


@pytest.fixture(scope="module")
def journal_overhead():
    """Journal write cost as a fraction of p50 plan+execute wall latency.

    Run-to-run latency on a live platform drifts (the refiner retrains on
    an ever-growing record set), so an A/B wall-clock comparison drowns
    the millisecond-scale journal cost in model-fitting noise.  Instead
    the ``ires_journal_append_seconds`` histogram measures the durable
    writes exactly: overhead = journal seconds per run / p50 run latency.
    The A/B medians are still reported as context.
    """
    import tempfile

    from repro.obs.metrics import REGISTRY

    append_seconds = REGISTRY.histogram("ires_journal_append_seconds", "")

    def one_run(ires) -> float:
        start = time.perf_counter()
        report = ires.execute(ires.workflows["helloworld-chain"])
        assert report.succeeded
        return time.perf_counter() - start

    bare, journaled = [], []
    with tempfile.TemporaryDirectory() as tmp:
        bare_ires = _platform(journal_dir=None)
        journaled_ires = _platform(journal_dir=tmp)
        one_run(bare_ires), one_run(journaled_ires)  # warm both paths
        sum_before, count_before = (append_seconds.sum(),
                                    append_seconds.value())
        for _ in range(LATENCY_RUNS):  # interleave to cancel drift
            bare.append(one_run(bare_ires))
            journaled.append(one_run(journaled_ires))
        journal_seconds = append_seconds.sum() - sum_before
        journal_records = int(append_seconds.value() - count_before)

    journaled_p50 = statistics.median(journaled)
    per_run = journal_seconds / LATENCY_RUNS
    return {
        "bare_p50": statistics.median(bare),
        "journaled_p50": journaled_p50,
        "journal_seconds_per_run": per_run,
        "records_per_run": journal_records / LATENCY_RUNS,
        "overhead_fraction": per_run / journaled_p50,
        "bare": bare, "journaled": journaled,
    }


@pytest.fixture(scope="module")
def recovery_sweep(tmp_path_factory):
    """Kill (truncate) after every step boundary; resume each run."""
    root = tmp_path_factory.mktemp("recovery")
    reference = _platform(journal_dir=root / "ref")
    report = reference.execute(reference.workflows["helloworld-chain"])
    total_steps = len(report.executions)
    ref_lines = journal_path(root / "ref",
                             report.run_id).read_text().splitlines()

    outcomes = []
    for kill_after in range(1, total_steps):
        case_dir = root / f"kill-{kill_after}"
        case_dir.mkdir()
        path = journal_path(case_dir, report.run_id)
        kept, seen = [], 0
        for line in ref_lines:
            kept.append(line)
            if json.loads(line).get("kind") == "step_finished":
                seen += 1
                if seen >= kill_after:
                    break
        # the torn tail a kill -9 mid-write leaves behind
        path.write_text("\n".join(kept) + "\n" + '{"seq": 999, "kind": "ste')

        run = recover(path)
        done_before = run.finished_step_keys()
        fresh = _platform(journal_dir=case_dir)
        start = time.perf_counter()
        resumed = fresh.executor.resume(
            fresh.workflows["helloworld-chain"], run)
        recovery_wall = time.perf_counter() - start
        executed = {(e.step.abstract_name, e.step.operator.name)
                    for e in resumed.executions}
        outcomes.append({
            "kill_after_steps": kill_after,
            "recovered_steps": resumed.recovered_steps,
            "executed_steps": len(resumed.executions),
            "re_executed": len(executed & done_before),
            "succeeded": resumed.succeeded,
            "recovery_wall_seconds": round(recovery_wall, 4),
        })
    return {"total_steps": total_steps, "outcomes": outcomes}


def test_service_concurrency_journal_and_recovery(
        benchmark, service_burst, journal_overhead, recovery_sweep):
    burst, overhead, sweep = service_burst, journal_overhead, recovery_sweep
    latencies = burst["latencies"]
    throughput = BURST / burst["wall"]
    overhead_frac = overhead["overhead_fraction"]

    rows = [
        ["burst size", BURST, ""],
        ["workers", WORKERS, ""],
        ["peak concurrent runs", burst["peak"], f"gate >= {WORKERS}"],
        ["burst wall (s)", round(burst["wall"], 2), ""],
        ["runs/sec", round(throughput, 2), ""],
        ["run p50 (s)", round(_percentile(latencies, 0.50), 3), ""],
        ["run p99 (s)", round(_percentile(latencies, 0.99), 3), ""],
        ["bare p50 (s)", round(overhead["bare_p50"], 4), ""],
        ["journaled p50 (s)", round(overhead["journaled_p50"], 4), ""],
        ["journal ms/run", round(overhead["journal_seconds_per_run"] * 1000,
                                 3), ""],
        ["journal overhead", f"{overhead_frac * 100:.2f}%",
         f"gate <= {OVERHEAD_CEILING * 100:.0f}%"],
        ["recovery kill points", len(sweep["outcomes"]), ""],
        ["re-executed steps", sum(o["re_executed"]
                                  for o in sweep["outcomes"]), "gate == 0"],
    ]
    emit(
        "ext_service",
        f"Extension: durable service, {WORKERS} workers on helloworld-chain",
        ["metric", "value", "gate"],
        rows, widths=[24, 14, 14],
        note="(journal = write-ahead JSONL, fsync per record; recovery "
             "sweep kills after every step boundary and resumes)",
    )

    payload = {
        "workload": "helloworld-chain",
        "service": {
            "workers": WORKERS,
            "queue_limit": QUEUE_LIMIT,
            "burst": BURST,
            "peak_concurrent_runs": burst["peak"],
            "wall_seconds": round(burst["wall"], 3),
            "submissions_per_second": round(throughput, 3),
            "run_p50_seconds": round(_percentile(latencies, 0.50), 4),
            "run_p99_seconds": round(_percentile(latencies, 0.99), 4),
            "runs_by_state": burst["stats"]["runsByState"],
        },
        "journal": {
            "bare_p50_seconds": round(overhead["bare_p50"], 5),
            "journaled_p50_seconds": round(overhead["journaled_p50"], 5),
            "journal_seconds_per_run": round(
                overhead["journal_seconds_per_run"], 6),
            "records_per_run": overhead["records_per_run"],
            "overhead_fraction": round(overhead_frac, 5),
            "overhead_ceiling": OVERHEAD_CEILING,
            "samples_per_mode": LATENCY_RUNS,
        },
        "recovery": {
            "total_steps": sweep["total_steps"],
            "kill_points": len(sweep["outcomes"]),
            "re_executed_steps_total": sum(o["re_executed"]
                                           for o in sweep["outcomes"]),
            "all_recovered": all(o["succeeded"]
                                 for o in sweep["outcomes"]),
            "outcomes": sweep["outcomes"],
        },
    }
    (REPO_ROOT / "BENCH_service.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # gate 1: ≥ 8 genuinely concurrent runs, everything succeeded, queue bounded
    assert burst["peak"] >= WORKERS, burst["peak"]
    assert all(rec.state == "succeeded" for rec in burst["recs"])
    assert burst["stats"]["runsByState"] == {"succeeded": BURST}
    # gate 2: journaling costs ≤ 5% of p50 plan+execute latency
    assert overhead_frac <= OVERHEAD_CEILING, (
        overhead["journal_seconds_per_run"], overhead["journaled_p50"])
    # gate 3: every kill point recovers with zero re-execution
    assert all(o["succeeded"] for o in sweep["outcomes"])
    assert all(o["re_executed"] == 0 for o in sweep["outcomes"])
    for outcome in sweep["outcomes"]:
        assert (outcome["recovered_steps"] + outcome["executed_steps"]
                == sweep["total_steps"])

    # the benchmark loop: one journaled run end-to-end (the service hot path)
    ires = _platform(journal_dir=burst["journal_dir"])
    workflow = ires.workflows["helloworld-chain"]
    benchmark(lambda: ires.execute(workflow))


def test_service_journals_every_burst_run(service_burst):
    """Durability invariant: each burst run left a complete journal."""
    for rec in service_burst["recs"]:
        records = read_journal(
            journal_path(service_burst["journal_dir"], rec.run_id))
        assert records[0]["kind"] == "run_admitted"
        assert records[-1]["kind"] == "run_finished"
        assert records[-1]["state"] == "succeeded"
