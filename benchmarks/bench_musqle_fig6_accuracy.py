"""MuSQLE Figure 6 — execution-time estimation accuracy per engine.

Paper's shape: estimation error grows with query size (cardinality
misestimates propagate through deeper join trees) but stays workable; it is
reported per engine.  We measure the *relative* error between the
optimizer-facing estimate and the simulated execution time when each engine
runs the whole query locally (all tables resident).
"""

from collections import defaultdict

import pytest

from figutil import emit
from repro.engines import MemoryExceededError, SimClock
from repro.musqle import (
    ALL_QUERIES,
    LocalSQLEngine,
    MemSQLCostModel,
    PostgresCostModel,
    SparkSQLCostModel,
)
from repro.musqle.queries import query_tables
from repro.sqlengine.tpch import generate_tpch

SIZE_BUCKETS = {(2, 3): "2-3 tables", (4, 5): "4-5 tables", (6, 7): "6-7 tables"}


def engine_suite():
    clock = SimClock()
    # scale 5 so join work is large relative to fixed job overheads
    tables = generate_tpch(5.0, seed=8)
    return {
        "PostgreSQL": LocalSQLEngine("PostgreSQL", PostgresCostModel(), clock,
                                     dict(tables), join_bias=0.15, seed=1),
        "MemSQL": LocalSQLEngine("MemSQL", MemSQLCostModel(), clock,
                                 dict(tables), join_bias=0.25, seed=2),
        "SparkSQL": LocalSQLEngine("SparkSQL", SparkSQLCostModel(), clock,
                                   dict(tables), join_bias=0.40, seed=3),
    }, clock


@pytest.fixture(scope="module")
def series():
    engines, clock = engine_suite()
    errors: dict[str, dict[str, list[float]]] = {
        name: defaultdict(list) for name in engines
    }
    for sql in ALL_QUERIES:
        n = len(query_tables(sql))
        bucket = next(label for (lo, hi), label in SIZE_BUCKETS.items()
                      if lo <= n <= hi)
        for name, engine in engines.items():
            estimate = engine.get_stats(sql)
            if estimate.native_cost == float("inf"):
                continue
            before = clock.now
            try:
                engine.execute(sql)
            except MemoryExceededError:
                continue
            actual = clock.now - before
            if actual > 1e-6:
                errors[name][bucket].append(
                    abs(estimate.est_seconds - actual) / actual)
    rows = []
    for name in engines:
        row = [name]
        for label in SIZE_BUCKETS.values():
            values = errors[name][label]
            row.append(sum(values) / len(values) if values else None)
        rows.append(row)
    return rows


def test_musqle_fig6_estimation_accuracy(benchmark, series):
    emit(
        "musqle_fig6_accuracy",
        "MuSQLE Fig 6: mean relative estimation error per engine vs query size",
        ["engine"] + list(SIZE_BUCKETS.values()),
        series, widths=[12, 13, 13, 13],
    )
    for row in series:
        for value in row[1:]:
            if value is not None:
                # errors stay workable (the paper's engines misestimate too,
                # but remain usable for planning)
                assert value < 2.0

    engines, _ = engine_suite()
    spark = engines["SparkSQL"]
    benchmark(lambda: spark.get_stats(ALL_QUERIES[5]))
