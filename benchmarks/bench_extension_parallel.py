"""Extension — parallel plan execution under container constraints.

Not a paper figure: quantifies what the plan's dataflow parallelism buys
(the paper's executor runs independent subtasks concurrently on YARN) and
how the makespan degrades as the cluster shrinks.
"""

import pytest

from figutil import emit
from repro.core import IReS
from repro.engines.registry import build_default_cloud
from repro.execution.parallel import ParallelSimulator
from repro.scenarios import setup_relational_analytics


def simulate(n_nodes: int, scale_gb: float):
    cloud = build_default_cloud(n_nodes=n_nodes)
    ires = IReS(cloud=cloud)
    make = setup_relational_analytics(ires)
    plan = ires.plan(make(scale_gb))
    return ParallelSimulator(cloud, seed=3, charge_clock=False).simulate(plan)


@pytest.fixture(scope="module")
def series():
    rows = []
    for n_nodes in (16, 12, 8):
        report = simulate(n_nodes, 10)
        rows.append([
            n_nodes, report.serial_time, report.makespan,
            report.speedup, report.max_concurrency,
        ])
    return rows


def test_extension_parallel_execution(benchmark, series):
    emit(
        "extension_parallel",
        "Extension: serial vs parallel makespan of the relational workflow",
        ["nodes", "serial_s", "makespan_s", "speedup", "max_conc"],
        series, widths=[8, 11, 12, 9, 10],
    )
    for row in series:
        # the parallel schedule is never slower than serial execution
        assert row[2] <= row[1] + 1e-9
    # the full cluster overlaps the q1/q2 branches
    assert series[0][3] > 1.0
    assert series[0][4] >= 2

    benchmark(lambda: simulate(16, 10).makespan)
