"""Shared utilities for the figure/table reproduction benchmarks.

Every benchmark prints the series the corresponding paper figure plots and
also writes it to ``benchmarks/results/<name>.txt`` so the numbers survive
pytest's output capture.  ``EXPERIMENTS.md`` indexes these files.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"

INF = float("inf")


def fmt(value, width: int = 10, digits: int = 2) -> str:
    """Format one numeric cell; infinity renders as the paper's 'fail'."""
    if value is None:
        return " " * (width - 3) + "  —"
    if isinstance(value, float) and value == INF:
        return f"{'fail':>{width}}"
    if isinstance(value, float):
        return f"{value:>{width}.{digits}f}"
    return f"{value:>{width}}"


def emit(name: str, title: str, header: list[str], rows: list[list],
         widths: list[int] | None = None, note: str = "") -> str:
    """Render a table, print it, persist it under benchmarks/results/."""
    if widths is None:
        widths = [max(len(h) + 2, 10) for h in header]
    lines = [f"== {title} =="]
    lines.append("".join(f"{h:>{w}}" for h, w in zip(header, widths)))
    for row in rows:
        cells = []
        for value, w in zip(row, widths):
            if isinstance(value, str):
                cells.append(f"{value:>{w}}")
            else:
                cells.append(fmt(value, w))
        lines.append("".join(cells))
    if note:
        lines.append(note)
    text = "\n".join(lines)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return text
