"""Ablation — MuSQLE's statistics injection on vs off (Appendix B §VII).

Without injection, an engine pricing a query over not-yet-materialized
intermediates must assume placeholder statistics (SparkSQL's pre-injection
behaviour: treat every external table as huge, never broadcast it).  The
optimizer then misprices candidate joins, producing worse plans and far
larger estimation errors.
"""

import pytest

from figutil import emit
from repro.musqle import ALL_QUERIES, MuSQLE, build_default_deployment
from repro.musqle.queries import query_tables

QUERY_IDS = [4, 5, 6, 13, 15, 17]  # 3-6-table queries crossing engines


def run_suite(use_injection: bool):
    deployment = build_default_deployment(scale_factor=2.0, seed=13)
    musqle = MuSQLE(deployment)
    musqle.optimizer.use_injection = use_injection
    est_costs, actual, errors = [], [], []
    for qid in QUERY_IDS:
        sql = ALL_QUERIES[qid]
        plan, _ = musqle.optimize(sql)
        table, info = musqle.execute(plan)
        musqle.cleanup()
        est_costs.append(plan.est_seconds)
        actual.append(info.sim_seconds)
        if info.sim_seconds > 0.05:
            errors.append(abs(plan.est_seconds - info.sim_seconds)
                          / info.sim_seconds)
    return est_costs, actual, errors


@pytest.fixture(scope="module")
def series():
    with_inj = run_suite(True)
    without = run_suite(False)
    rows = []
    for i, qid in enumerate(QUERY_IDS):
        rows.append([
            f"Q{qid}", len(query_tables(ALL_QUERIES[qid])),
            with_inj[1][i], without[1][i],
            without[1][i] / max(with_inj[1][i], 1e-9),
        ])
    return rows, with_inj, without


def test_ablation_stats_injection(benchmark, series):
    rows, with_inj, without = series
    emit(
        "ablation_injection",
        "Ablation: execution time (s) with vs without statistics injection",
        ["query", "tables", "with_inj", "without", "slowdown_x"],
        rows, widths=[7, 8, 10, 9, 12],
    )
    mean_err_with = sum(with_inj[2]) / len(with_inj[2])
    mean_err_without = sum(without[2]) / len(without[2])
    print(f"\nmean relative estimation error: with={mean_err_with:.2f} "
          f"without={mean_err_without:.2f}")
    # injection never hurts and helps somewhere
    total_with = sum(with_inj[1])
    total_without = sum(without[1])
    assert total_with <= total_without * 1.02
    # misleading placeholder stats wreck estimation accuracy
    assert mean_err_without > mean_err_with

    deployment = build_default_deployment(scale_factor=1.0, seed=14)
    musqle = MuSQLE(deployment)

    def optimize_once():
        musqle.optimize(ALL_QUERIES[5])
        musqle.cleanup()

    benchmark(optimize_once)
