"""Run the ``bench_extension_*`` suite and write one ``BENCH_summary.json``.

Each extension benchmark runs as its own pytest subprocess (so one
pathological bench cannot poison the others' process state), and the
summary records per-bench wall time, pass/fail status, and the key metric
tables the bench emitted under ``benchmarks/results/`` during its run::

    PYTHONPATH=src python benchmarks/run_all.py [--out BENCH_summary.json]
    PYTHONPATH=src python benchmarks/run_all.py --pattern 'bench_extension_*.py'

CI runs this on the small default configs and uploads the summary as an
artifact, which is the repo's benchmark trajectory over time.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
RESULTS_DIR = BENCH_DIR / "results"


def _result_tables(since: float) -> dict[str, str]:
    """Key-metric tables (benchmarks/results/*.txt) modified after ``since``."""
    tables: dict[str, str] = {}
    if not RESULTS_DIR.is_dir():
        return tables
    for path in sorted(RESULTS_DIR.glob("*.txt")):
        if path.stat().st_mtime >= since:
            tables[path.stem] = path.read_text().rstrip()
    return tables


def run_bench(path: Path, timeout: float) -> dict:
    """Run one benchmark file under pytest; returns its summary record."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    started = time.time()
    wall_start = time.perf_counter()
    try:
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "-q", "--benchmark-disable",
             str(path)],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=timeout,
        )
        status = "ok" if proc.returncode == 0 else "failed"
        tail = (proc.stdout or "").strip().splitlines()[-3:]
    except subprocess.TimeoutExpired:
        status = "timeout"
        tail = [f"timed out after {timeout:.0f}s"]
    wall = time.perf_counter() - wall_start
    record = {
        "bench": path.stem,
        "status": status,
        "wall_seconds": round(wall, 3),
        "key_metrics": _result_tables(since=started),
    }
    if status != "ok":
        record["output_tail"] = tail
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_summary.json"),
                        help="summary file to write")
    parser.add_argument("--pattern", default="bench_extension_*.py",
                        help="benchmark files to run (glob under benchmarks/)")
    parser.add_argument("--timeout", type=float, default=900.0,
                        help="per-bench timeout in seconds")
    args = parser.parse_args(argv)

    benches = sorted(BENCH_DIR.glob(args.pattern))
    if not benches:
        print(f"error: no benchmarks match {args.pattern!r} under {BENCH_DIR}",
              file=sys.stderr)
        return 2
    suite_start = time.perf_counter()
    records = []
    for path in benches:
        print(f"[run_all] {path.name} ...", flush=True)
        record = run_bench(path, timeout=args.timeout)
        print(f"[run_all]   {record['status']} "
              f"in {record['wall_seconds']:.1f}s", flush=True)
        records.append(record)
    summary = {
        "suite": args.pattern,
        "total_wall_seconds": round(time.perf_counter() - suite_start, 3),
        "benches": records,
        "passed": sum(1 for r in records if r["status"] == "ok"),
        "failed": sum(1 for r in records if r["status"] != "ok"),
    }
    Path(args.out).write_text(json.dumps(summary, indent=2, sort_keys=True))
    print(f"[run_all] wrote {args.out}: {summary['passed']} passed, "
          f"{summary['failed']} failed")
    return 0 if summary["failed"] == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
