"""MuSQLE Figure 5 — optimization time vs number of connected engines.

Paper's protocol: simulate additional engine endpoints whose API methods
insert realistic delays, and measure how optimization time scales from 2 to
6 engines.  Shape: more engines cost more (the engine loop inside
emitCsgCmp), but stay within interactive bounds.
"""

import pytest

from figutil import emit
from repro.engines import SimClock
from repro.musqle import LocalSQLEngine, MuSQLE, PostgresCostModel
from repro.musqle.system import Deployment
from repro.sqlengine.tpch import generate_tpch

ENGINE_COUNTS = [2, 3, 4, 5, 6]
#: per-API-call latency of the simulated endpoints (the paper samples from
#: the distribution of real API delays; we use a fixed representative value)
API_DELAY_S = 0.0005
QUERY = (
    "SELECT * FROM region, nation, customer, orders, lineitem "
    "WHERE r_regionkey = n_regionkey AND n_nationkey = c_nationkey "
    "AND c_custkey = o_custkey AND o_orderkey = l_orderkey"
)


def deployment_with(n_engines: int) -> Deployment:
    clock = SimClock()
    tables = generate_tpch(1.0, seed=6)
    engines = {
        f"engine{i}": LocalSQLEngine(
            f"engine{i}", PostgresCostModel(page_seconds=2e-4 * (1 + 0.3 * i)),
            clock, dict(tables), api_delay=API_DELAY_S, seed=i,
        )
        for i in range(n_engines)
    }
    return Deployment(engines=engines, clock=clock, tables=tables)


@pytest.fixture(scope="module")
def series():
    rows = []
    for n in ENGINE_COUNTS:
        musqle = MuSQLE(deployment_with(n))
        _, stats = musqle.optimize(QUERY)
        rows.append([
            n, 1000 * stats.total_seconds, 1000 * stats.explain_seconds,
            1000 * stats.inject_seconds, stats.csg_cmp_pairs, stats.dp_entries,
        ])
    return rows


def test_musqle_fig5_engine_scaling(benchmark, series):
    emit(
        "musqle_fig5_engines",
        "MuSQLE Fig 5: optimization time (ms) vs #engines (5-table query)",
        ["engines", "total_ms", "explain_ms", "inject_ms", "pairs", "entries"],
        series, widths=[9, 11, 12, 11, 8, 9],
    )
    # more engines -> more API calls -> more time
    assert series[-1][1] > series[0][1]
    # dp entries grow with engines (one slot per engine per subset)
    assert series[-1][5] > series[0][5]
    # still interactive even with 6 engines
    assert series[-1][1] < 10_000.0

    musqle = MuSQLE(deployment_with(3))
    benchmark(lambda: musqle.optimize(QUERY))
